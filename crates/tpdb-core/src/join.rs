//! Temporal-probabilistic joins with negation (Table II of the paper).
//!
//! Every TP join with negation is the union of window sets:
//!
//! | operator                  | window sets used                                               |
//! |---------------------------|----------------------------------------------------------------|
//! | inner join `r ⋈ s`        | `WO(r;s,θ)`                                                    |
//! | anti join `r ▷ s`         | `WU(r;s,θ)`, `WN(r;s,θ)`                                       |
//! | left outer `r ⟕ s`        | `WU(r;s,θ)`, `WN(r;s,θ)`, `WO(r;s,θ)`                          |
//! | right outer `r ⟖ s`       | `WO(r;s,θ)`, `WU(s;r,θ)`, `WN(s;r,θ)`                          |
//! | full outer `r ⟗ s`        | all five sets                                                  |
//!
//! An output tuple is formed for each window: the facts and the interval are
//! used in their exact form and the output lineage combines `λr` and `λs`
//! with the window class's lineage-concatenation function (`and` for
//! overlapping, `andNot` for negating, pass-through for unmatched). The
//! output probability is the probability of that lineage under tuple
//! independence.

//! The NJ implementation executes the whole computation as a **streaming
//! pipeline**: the overlap join produces windows one `r`-tuple group at a
//! time ([`OverlapWindowStream`]), the LAWAU and LAWAN adaptors extend each
//! group in place, and output tuples are formed as the windows come out —
//! no intermediate window vector is ever materialized.

use crate::overlap::OverlapJoinPlan;
use crate::theta::ThetaCondition;
use crate::window::{Window, WindowKind};
use tpdb_lineage::{Lineage, LineageRef, ProbabilityEngine};
use tpdb_storage::{Schema, StorageError, TpRelation, TpTuple, Value};

/// Which TP join with negation to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpJoinKind {
    /// `r ⋈ s` — pairs of matching, temporally overlapping tuples.
    Inner,
    /// `r ▷ s` — at each time point, the probability that a tuple of `r`
    /// matches *no* tuple of `s`.
    Anti,
    /// `r ⟕ s` — inner join plus the anti-join part of `r`.
    LeftOuter,
    /// `r ⟖ s` — inner join plus the anti-join part of `s`.
    RightOuter,
    /// `r ⟗ s` — inner join plus both anti-join parts.
    FullOuter,
}

impl TpJoinKind {
    /// The operator symbol used in relation names and plan explanations.
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            TpJoinKind::Inner => "⋈",
            TpJoinKind::Anti => "▷",
            TpJoinKind::LeftOuter => "⟕",
            TpJoinKind::RightOuter => "⟖",
            TpJoinKind::FullOuter => "⟗",
        }
    }
}

/// TP inner join `r ⋈_θ s`. Probabilities of base tuples are taken from the
/// input relations themselves.
pub fn tp_inner_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    tp_join(r, s, theta, TpJoinKind::Inner)
}

/// TP anti join `r ▷_θ s`.
pub fn tp_anti_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    tp_join(r, s, theta, TpJoinKind::Anti)
}

/// TP left outer join `r ⟕_θ s` (the query of Fig. 1b).
pub fn tp_left_outer_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    tp_join(r, s, theta, TpJoinKind::LeftOuter)
}

/// TP right outer join `r ⟖_θ s`.
pub fn tp_right_outer_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    tp_join(r, s, theta, TpJoinKind::RightOuter)
}

/// TP full outer join `r ⟗_θ s`.
pub fn tp_full_outer_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
) -> Result<TpRelation, StorageError> {
    tp_join(r, s, theta, TpJoinKind::FullOuter)
}

/// Computes any TP join with negation, deriving base-tuple probabilities
/// from the atomic lineages of the two inputs.
pub fn tp_join(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
) -> Result<TpRelation, StorageError> {
    tp_join_with_plan(r, s, theta, kind, None)
}

/// [`tp_join`] with an explicitly chosen overlap-join plan (`None` lets the
/// engine pick: sweep for equi-joins, nested loop otherwise).
///
/// # Errors
///
/// Returns [`StorageError::PlanNotApplicable`] when a hash or sweep plan is
/// forced but θ is not a pure equi-join.
pub fn tp_join_with_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    plan: Option<OverlapJoinPlan>,
) -> Result<TpRelation, StorageError> {
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    tp_join_with_engine_and_plan(r, s, theta, kind, plan, &mut engine)
}

/// Computes any TP join with negation using an explicit probability engine.
/// Use this variant when the inputs are themselves derived relations whose
/// compound lineages reference base tuples not present in `r`/`s`.
pub fn tp_join_with_engine(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    engine: &mut ProbabilityEngine,
) -> Result<TpRelation, StorageError> {
    tp_join_with_engine_and_plan(r, s, theta, kind, None, engine)
}

/// The fully streaming NJ join: overlap join → LAWAU → LAWAN → output
/// formation, with output tuples formed as windows leave the pipeline.
///
/// This is the drain-everything entry point over [`crate::TpJoinStream`];
/// build the stream directly to consume output tuples lazily instead.
pub fn tp_join_with_engine_and_plan(
    r: &TpRelation,
    s: &TpRelation,
    theta: &ThetaCondition,
    kind: TpJoinKind,
    plan: Option<OverlapJoinPlan>,
    engine: &mut ProbabilityEngine,
) -> Result<TpRelation, StorageError> {
    Ok(
        crate::TpJoinStream::with_engine_and_plan(r, s, theta, kind, plan, engine)?
            .collect_relation(),
    )
}

/// Forms the output relation of a TP join from already-computed window sets.
///
/// `left_windows` are windows of `r` with respect to `s`; `right_windows`
/// are windows of `s` with respect to `r` (only consulted by right/full
/// outer joins, and their overlapping windows are ignored because
/// `WO(r;s,θ) = WO(s;r,θ)` is already contained in `left_windows`). This is
/// shared by the NJ implementation and the Temporal Alignment baseline so
/// that the two approaches differ only in *how the windows are computed*.
pub fn assemble_join_result(
    r: &TpRelation,
    s: &TpRelation,
    kind: TpJoinKind,
    left_windows: &[Window],
    right_windows: &[Window],
    engine: &mut ProbabilityEngine,
) -> TpRelation {
    let schema = output_schema(r, s, kind);
    let name = format!("{}{}{}", r.name(), kind.symbol(), s.name());
    let mut out = TpRelation::new(&name, schema);

    for w in left_windows {
        if let Some(tuple) = form_output_tuple(w, r, s, kind, Side::Left, engine) {
            out.push_unchecked(tuple);
        }
    }
    for w in right_windows {
        if w.is_overlapping() {
            continue;
        }
        if let Some(tuple) = form_output_tuple(w, s, r, kind, Side::Right, engine) {
            out.push_unchecked(tuple);
        }
    }
    out
}

/// Which input relation plays the role of the window's positive relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// Windows of `r` with respect to `s`.
    Left,
    /// Windows of `s` with respect to `r` (right/full outer joins only).
    Right,
}

/// The fact schema of the join result.
pub(crate) fn output_schema(r: &TpRelation, s: &TpRelation, kind: TpJoinKind) -> Schema {
    match kind {
        TpJoinKind::Anti => r.schema().clone(),
        _ => r.schema().concat(s.schema(), &format!("{}_", s.name())),
    }
}

/// Forms the output tuple of a window (or `None` when the window class does
/// not participate in the operator, per Table II).
pub(crate) fn form_output_tuple(
    w: &Window,
    pos: &TpRelation,
    neg: &TpRelation,
    kind: TpJoinKind,
    side: Side,
    engine: &mut ProbabilityEngine,
) -> Option<TpTuple> {
    // Which window classes participate, per operator and side (Table II).
    let participates = match (kind, side, w.kind) {
        // inner join: only WO(r;s,θ)
        (TpJoinKind::Inner, _, k) => k == WindowKind::Overlapping,
        // anti join: WU(r;s,θ) and WN(r;s,θ)
        (TpJoinKind::Anti, Side::Left, k) => k != WindowKind::Overlapping,
        (TpJoinKind::Anti, Side::Right, _) => false,
        // left outer: WO ∪ WU(r;s) ∪ WN(r;s)
        (TpJoinKind::LeftOuter, Side::Left, _) => true,
        (TpJoinKind::LeftOuter, Side::Right, _) => false,
        // right outer: WO plus WU(s;r) ∪ WN(s;r)
        (TpJoinKind::RightOuter, Side::Left, k) => k == WindowKind::Overlapping,
        (TpJoinKind::RightOuter, Side::Right, k) => k != WindowKind::Overlapping,
        // full outer: all five sets
        (TpJoinKind::FullOuter, Side::Left, _) => true,
        (TpJoinKind::FullOuter, Side::Right, k) => k != WindowKind::Overlapping,
    };
    if !participates {
        return None;
    }

    // Output lineage via the window class's concatenation function.
    let lineage = match w.kind {
        WindowKind::Overlapping => {
            // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
            Lineage::and_concat(&w.lambda_r, w.lambda_s.as_ref().expect("λs"))
        }
        WindowKind::Unmatched => w.lambda_r.clone(),
        WindowKind::Negating => {
            // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
            Lineage::and_not_concat(&w.lambda_r, w.lambda_s.as_ref().expect("λs"))
        }
    };
    let probability = engine.probability(&lineage);

    // Output facts: Fr ∘ Fs with NULL padding where Fs (or Fr, on the right
    // side) is null.
    let pos_facts = pos.tuple(w.r_idx).facts();
    let facts: Vec<Value> = match kind {
        TpJoinKind::Anti => pos_facts.to_vec(),
        _ => {
            let neg_facts: Vec<Value> = match w.s_idx {
                Some(si) => neg.tuple(si).facts().to_vec(),
                None => vec![Value::Null; neg.schema().arity()],
            };
            match side {
                Side::Left => pos_facts.iter().cloned().chain(neg_facts).collect(),
                // On the right side the window's positive relation is `s`:
                // its facts go into the right-hand columns of the output.
                Side::Right => neg_facts
                    .into_iter()
                    .chain(pos_facts.iter().cloned())
                    .collect(),
            }
        }
    };

    Some(TpTuple::new(facts, lineage, w.interval, probability))
}

/// [`form_output_tuple`] over the interned window representation: the
/// output lineage is built as an arena node, its probability is computed
/// through the id-keyed memo, and only the surviving output tuple converts
/// the formula back into a [`Lineage`] tree (at the serde/API boundary).
pub(crate) fn form_output_tuple_interned(
    w: &Window<LineageRef>,
    pos: &TpRelation,
    neg: &TpRelation,
    kind: TpJoinKind,
    side: Side,
    engine: &mut ProbabilityEngine,
) -> Option<TpTuple> {
    // Which window classes participate, per operator and side (Table II).
    let participates = match (kind, side, w.kind) {
        // inner join: only WO(r;s,θ)
        (TpJoinKind::Inner, _, k) => k == WindowKind::Overlapping,
        // anti join: WU(r;s,θ) and WN(r;s,θ)
        (TpJoinKind::Anti, Side::Left, k) => k != WindowKind::Overlapping,
        (TpJoinKind::Anti, Side::Right, _) => false,
        // left outer: WO ∪ WU(r;s) ∪ WN(r;s)
        (TpJoinKind::LeftOuter, Side::Left, _) => true,
        (TpJoinKind::LeftOuter, Side::Right, _) => false,
        // right outer: WO plus WU(s;r) ∪ WN(s;r)
        (TpJoinKind::RightOuter, Side::Left, k) => k == WindowKind::Overlapping,
        (TpJoinKind::RightOuter, Side::Right, k) => k != WindowKind::Overlapping,
        // full outer: all five sets
        (TpJoinKind::FullOuter, Side::Left, _) => true,
        (TpJoinKind::FullOuter, Side::Right, k) => k != WindowKind::Overlapping,
    };
    if !participates {
        return None;
    }

    // Output lineage via the window class's concatenation function, built
    // directly in the arena.
    let lineage_ref = match w.kind {
        WindowKind::Overlapping => {
            // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
            let ls = w.lambda_s.expect("λs");
            engine.interner_mut().and2(w.lambda_r, ls)
        }
        WindowKind::Unmatched => w.lambda_r,
        WindowKind::Negating => {
            // Window-kind invariant. tpdb-lint: allow(no-panic-in-lib)
            let ls = w.lambda_s.expect("λs");
            engine.interner_mut().and_not(w.lambda_r, ls)
        }
    };
    let probability = engine.probability_ref(lineage_ref);
    let lineage = engine.to_lineage(lineage_ref);

    // Output facts: Fr ∘ Fs with NULL padding where Fs (or Fr, on the right
    // side) is null.
    let pos_facts = pos.tuple(w.r_idx).facts();
    let facts: Vec<Value> = match kind {
        TpJoinKind::Anti => pos_facts.to_vec(),
        _ => {
            let neg_facts: Vec<Value> = match w.s_idx {
                Some(si) => neg.tuple(si).facts().to_vec(),
                None => vec![Value::Null; neg.schema().arity()],
            };
            match side {
                Side::Left => pos_facts.iter().cloned().chain(neg_facts).collect(),
                // On the right side the window's positive relation is `s`:
                // its facts go into the right-hand columns of the output.
                Side::Right => neg_facts
                    .into_iter()
                    .chain(pos_facts.iter().cloned())
                    .collect(),
            }
        }
    };

    Some(TpTuple::new(facts, lineage, w.interval, probability))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::booking_relations;
    use tpdb_temporal::Interval;

    fn theta() -> ThetaCondition {
        ThetaCondition::column_equals("Loc", "Loc")
    }

    /// Finds the output tuple with the given interval and first fact value.
    fn find<'a>(rel: &'a TpRelation, name: &str, iv: Interval) -> Option<&'a TpTuple> {
        rel.iter()
            .find(|t| t.fact(0) == &Value::str(name) && t.interval() == iv)
    }

    #[test]
    fn left_outer_join_reproduces_fig_1b() {
        let (a, b, _) = booking_relations();
        let q = tp_left_outer_join(&a, &b, &theta()).unwrap();
        assert_eq!(q.len(), 7, "{q}");

        // ('Ann, ZAK, -', a1, [2,4), 0.70)
        let t = find(&q, "Ann", Interval::new(2, 4)).unwrap();
        assert!(t.fact(2).is_null());
        assert!((t.probability() - 0.70).abs() < 1e-9);

        // ('Ann, ZAK, hotel1', a1 ∧ b3, [4,6), 0.49)
        let t = find(&q, "Ann", Interval::new(4, 6)).unwrap();
        assert_eq!(t.fact(2), &Value::str("hotel1"));
        assert!((t.probability() - 0.49).abs() < 1e-9);

        // ('Ann, ZAK, hotel2', a1 ∧ b2, [5,8), 0.42)
        let t = q
            .iter()
            .find(|t| t.fact(2) == &Value::str("hotel2"))
            .unwrap();
        assert_eq!(t.interval(), Interval::new(5, 8));
        assert!((t.probability() - 0.42).abs() < 1e-9);

        // ('Ann, ZAK, -', a1 ∧ ¬b3, [4,5), 0.21)
        let t = find(&q, "Ann", Interval::new(4, 5)).unwrap();
        assert!(t.fact(2).is_null());
        assert!((t.probability() - 0.21).abs() < 1e-9);

        // ('Ann, ZAK, -', a1 ∧ ¬(b3 ∨ b2), [5,6), 0.084)
        let t = find(&q, "Ann", Interval::new(5, 6)).unwrap();
        assert!(t.fact(2).is_null());
        assert!((t.probability() - 0.084).abs() < 1e-9);

        // ('Ann, ZAK, -', a1 ∧ ¬b2, [6,8), 0.28)
        let t = find(&q, "Ann", Interval::new(6, 8)).unwrap();
        assert!(t.fact(2).is_null());
        assert!((t.probability() - 0.28).abs() < 1e-9);

        // ('Jim, WEN, -', a2, [7,10), 0.80)
        let t = find(&q, "Jim", Interval::new(7, 10)).unwrap();
        assert!(t.fact(2).is_null());
        assert!((t.probability() - 0.80).abs() < 1e-9);
    }

    #[test]
    fn inner_join_keeps_only_overlapping_windows() {
        let (a, b, _) = booking_relations();
        let q = tp_inner_join(&a, &b, &theta()).unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.iter().all(|t| !t.fact(2).is_null()));
        let probs: Vec<f64> = q
            .iter()
            .map(|t| (t.probability() * 100.0).round() / 100.0)
            .collect();
        assert!(probs.contains(&0.49));
        assert!(probs.contains(&0.42));
    }

    #[test]
    fn anti_join_has_r_schema_and_negated_probabilities() {
        let (a, b, _) = booking_relations();
        let q = tp_anti_join(&a, &b, &theta()).unwrap();
        // Output columns: only those of a.
        assert_eq!(q.schema().arity(), 2);
        // Five tuples: [2,4), [4,5), [5,6), [6,8) for Ann and [7,10) for Jim.
        assert_eq!(q.len(), 5);
        let t = q
            .iter()
            .find(|t| t.interval() == Interval::new(5, 6))
            .unwrap();
        assert!((t.probability() - 0.084).abs() < 1e-9);
        let t = q
            .iter()
            .find(|t| t.interval() == Interval::new(7, 10))
            .unwrap();
        assert!((t.probability() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn right_outer_join_pads_left_columns() {
        let (a, b, _) = booking_relations();
        let q = tp_right_outer_join(&a, &b, &theta()).unwrap();
        // Inner part: 2 tuples. Right null-extension: hotel3 (SOR) matches
        // nothing -> unmatched [1,4); hotel2 and hotel1 have negating and
        // unmatched windows with respect to a.
        assert!(q.len() > 2);
        // every inner tuple has both sides set
        let inner: Vec<&TpTuple> = q
            .iter()
            .filter(|t| !t.fact(0).is_null() && !t.fact(2).is_null())
            .collect();
        assert_eq!(inner.len(), 2);
        // hotel3 is never matched: a padded tuple over [1,4) must exist
        let sor = q
            .iter()
            .find(|t| t.fact(2) == &Value::str("hotel3"))
            .unwrap();
        assert!(sor.fact(0).is_null());
        assert_eq!(sor.interval(), Interval::new(1, 4));
        assert!((sor.probability() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn full_outer_join_contains_left_and_right_extensions() {
        let (a, b, _) = booking_relations();
        let left = tp_left_outer_join(&a, &b, &theta()).unwrap();
        let right = tp_right_outer_join(&a, &b, &theta()).unwrap();
        let full = tp_full_outer_join(&a, &b, &theta()).unwrap();
        // |full| = |left| + |right| - |inner| (inner tuples appear once)
        let inner = tp_inner_join(&a, &b, &theta()).unwrap();
        assert_eq!(full.len(), left.len() + right.len() - inner.len());
    }

    #[test]
    fn join_name_and_schema_prefixing() {
        let (a, b, _) = booking_relations();
        let q = tp_left_outer_join(&a, &b, &theta()).unwrap();
        assert_eq!(q.name(), "a⟕b");
        // colliding column Loc from b is prefixed
        assert!(q.schema().index_of("b_Loc").is_some());
        assert_eq!(q.schema().arity(), 4);
    }

    #[test]
    fn probabilities_never_exceed_input_probability() {
        let (a, b, _) = booking_relations();
        let q = tp_left_outer_join(&a, &b, &theta()).unwrap();
        for t in q.iter() {
            assert!(t.probability() <= 0.8 + 1e-12);
            assert!(t.probability() >= 0.0);
        }
    }

    #[test]
    fn self_join_with_shared_lineage_is_exact() {
        // Joining a relation with itself produces lineages like a1 ∧ a1 and
        // a1 ∧ ¬a1 — the probability engine must handle the correlation.
        let (a, _, _) = booking_relations();
        let q = tp_left_outer_join(&a, &a.renamed("a2"), &theta()).unwrap();
        for t in q.iter() {
            assert!((0.0..=1.0).contains(&t.probability()));
        }
        // the overlapping self-pair (Ann ⋈ Ann over [2,8)) has probability
        // P(a1 ∧ a1) = P(a1) = 0.7
        let t = q
            .iter()
            .find(|t| !t.fact(2).is_null() && t.fact(0) == &Value::str("Ann"))
            .unwrap();
        assert!((t.probability() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let (a, b, _) = booking_relations();
        let empty_a = TpRelation::new("a", a.schema().clone());
        let empty_b = TpRelation::new("b", b.schema().clone());
        assert_eq!(tp_left_outer_join(&empty_a, &b, &theta()).unwrap().len(), 0);
        let left_only = tp_left_outer_join(&a, &empty_b, &theta()).unwrap();
        // every a tuple survives unmatched with its own probability
        assert_eq!(left_only.len(), a.len());
        for (t, orig) in left_only.iter().zip(a.iter()) {
            assert_eq!(t.interval(), orig.interval());
            assert!((t.probability() - orig.probability()).abs() < 1e-12);
        }
        assert_eq!(tp_anti_join(&a, &empty_b, &theta()).unwrap().len(), a.len());
        assert_eq!(tp_inner_join(&a, &empty_b, &theta()).unwrap().len(), 0);
    }

    #[test]
    fn unknown_theta_column_is_an_error() {
        let (a, b, _) = booking_relations();
        let bad = ThetaCondition::column_equals("Nope", "Loc");
        assert!(tp_left_outer_join(&a, &b, &bad).is_err());
    }
}
