//! Temporal-probabilistic set operations.
//!
//! The generalized lineage-aware temporal windows of this crate were
//! introduced as the TP-join counterpart of the window mechanism the same
//! authors used for *set operations* in temporal-probabilistic databases
//! (Papaioannou, Theobald, Böhlen — ICDE 2018, reference [1] of the paper).
//! This module closes the loop and expresses the three TP set operations on
//! union-compatible relations through the join machinery:
//!
//! * **difference** `r ∖ s` — at each time point, the probability that the
//!   fact is true in `r` and not true in `s`: the TP anti join with θ
//!   requiring equality on *all* fact attributes;
//! * **intersection** `r ∩ s` — the fact is true in both: the TP inner join
//!   with the all-attribute equality condition, projected back to `r`'s
//!   schema;
//! * **union** `r ∪ s` — the fact is true in `r` or in `s`: per time point
//!   the lineage `λr ∨ λs`, assembled from the overlapping, unmatched and
//!   negating windows of both sides.

use crate::join::{tp_join_with_engine, TpJoinKind};
use crate::theta::ThetaCondition;
use crate::window::{Window, WindowKind};
use crate::{lawan, lawau, overlapping_windows};
use tpdb_lineage::{Lineage, ProbabilityEngine};
use tpdb_storage::{Schema, StorageError, TpRelation, TpTuple};

/// Builds the θ condition equating every fact attribute of two
/// union-compatible relations.
fn all_columns_equal(r: &TpRelation, s: &TpRelation) -> Result<ThetaCondition, StorageError> {
    if r.schema().arity() != s.schema().arity() {
        return Err(StorageError::ArityMismatch {
            expected: r.schema().arity(),
            got: s.schema().arity(),
        });
    }
    let mut theta = ThetaCondition::always();
    for (rf, sf) in r.schema().fields().iter().zip(s.schema().fields()) {
        theta = theta.and_compare(&rf.name, crate::theta::CompareOp::Eq, &sf.name);
    }
    Ok(theta)
}

/// TP set difference `r ∖Tp s` on union-compatible relations.
///
/// The result contains, per fact and time point, the probability that the
/// fact holds in `r` and does not hold in `s` — i.e. the TP anti join under
/// all-attribute equality.
pub fn tp_difference(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    let theta = all_columns_equal(r, s)?;
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    let mut out = tp_join_with_engine(r, s, &theta, TpJoinKind::Anti, &mut engine)?;
    out = out.renamed(&format!("{}∖{}", r.name(), s.name()));
    Ok(out)
}

/// TP set intersection `r ∩Tp s` on union-compatible relations: per fact and
/// time point, the probability that the fact holds in both relations.
pub fn tp_intersection(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    let theta = all_columns_equal(r, s)?;
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);
    let joined = tp_join_with_engine(r, s, &theta, TpJoinKind::Inner, &mut engine)?;
    // Project back to r's schema (the s-side columns duplicate the facts).
    let mut out = TpRelation::new(&format!("{}∩{}", r.name(), s.name()), r.schema().clone());
    let arity = r.schema().arity();
    for t in joined.iter() {
        out.push_unchecked(TpTuple::new(
            t.facts()[..arity].to_vec(),
            t.lineage().clone(),
            t.interval(),
            t.probability(),
        ));
    }
    Ok(out)
}

/// TP set union `r ∪Tp s` on union-compatible relations: per fact and time
/// point, the probability that the fact holds in `r` **or** in `s`
/// (lineage `λr ∨ λs` where both are valid, and the single-side lineage
/// elsewhere).
pub fn tp_union(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    let theta = all_columns_equal(r, s)?;
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);

    let schema: Schema = r.schema().clone();
    let mut out = TpRelation::new(&format!("{}∪{}", r.name(), s.name()), schema);

    // Windows of r with respect to s give, per r fact, the sub-intervals
    // where s is absent (unmatched → λr), present (negating → λr ∨ λs), and
    // the pairings themselves (overlapping — skipped: the negating windows of
    // the same group cover the identical sub-intervals and already carry the
    // full disjunction λs of the matching s tuples).
    let r_windows = lawan(&lawau(&overlapping_windows(r, s, &theta)?, r));
    emit_union_side(&r_windows, r, &mut out, &mut engine);

    // Windows of s with respect to r: only the unmatched parts are new; the
    // overlapping/negating parts were already covered from r's perspective.
    let flipped = theta.flipped();
    let s_windows = lawau(&overlapping_windows(s, r, &flipped)?, s);
    for w in s_windows.iter().filter(|w| w.kind == WindowKind::Unmatched) {
        let st = s.tuple(w.r_idx);
        let lineage = w.lambda_r.clone();
        let probability = engine.probability(&lineage);
        out.push_unchecked(TpTuple::new(
            st.facts().to_vec(),
            lineage,
            w.interval,
            probability,
        ));
    }
    Ok(out)
}

fn emit_union_side(
    windows: &[Window],
    positive: &TpRelation,
    out: &mut TpRelation,
    engine: &mut ProbabilityEngine,
) {
    for w in windows {
        let lineage = match w.kind {
            WindowKind::Unmatched => w.lambda_r.clone(),
            WindowKind::Negating => Lineage::or2(
                w.lambda_r.clone(),
                w.lambda_s.clone().expect("negating windows carry λs"),
            ),
            WindowKind::Overlapping => continue,
        };
        let probability = engine.probability(&lineage);
        out.push_unchecked(TpTuple::new(
            positive.tuple(w.r_idx).facts().to_vec(),
            lineage,
            w.interval,
            probability,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdb_lineage::{SymbolTable, VarId};
    use tpdb_storage::{DataType, Value};
    use tpdb_temporal::Interval;

    /// Two union-compatible single-column relations:
    /// r: (x, [0,10), 0.8), (y, [2,6), 0.5)
    /// s: (x, [4,8), 0.5), (z, [0,4), 0.9)
    fn fixtures() -> (TpRelation, TpRelation, SymbolTable) {
        let mut syms = SymbolTable::new();
        let mut r = TpRelation::new("r", Schema::tp(&[("k", DataType::Str)]));
        r.push(TpTuple::new(
            vec![Value::str("x")],
            Lineage::var(syms.intern("r1")),
            Interval::new(0, 10),
            0.8,
        ))
        .unwrap();
        r.push(TpTuple::new(
            vec![Value::str("y")],
            Lineage::var(syms.intern("r2")),
            Interval::new(2, 6),
            0.5,
        ))
        .unwrap();
        let mut s = TpRelation::new("s", Schema::tp(&[("k", DataType::Str)]));
        s.push(TpTuple::new(
            vec![Value::str("x")],
            Lineage::var(syms.intern("s1")),
            Interval::new(4, 8),
            0.5,
        ))
        .unwrap();
        s.push(TpTuple::new(
            vec![Value::str("z")],
            Lineage::var(syms.intern("s2")),
            Interval::new(0, 4),
            0.9,
        ))
        .unwrap();
        (r, s, syms)
    }

    #[test]
    fn difference_keeps_r_probability_where_s_is_absent() {
        let (r, s, _) = fixtures();
        let d = tp_difference(&r, &s).unwrap();
        // fact x: unmatched over [0,4) and [8,10) with p = 0.8, negated over
        // [4,8) with p = 0.8 * 0.5 = 0.4; fact y: unmatched over [2,6).
        let probe = |key: &str, t: i64| -> Option<f64> {
            d.iter()
                .find(|tp| tp.fact(0) == &Value::str(key) && tp.valid_at(t))
                .map(|tp| tp.probability())
        };
        assert!((probe("x", 1).unwrap() - 0.8).abs() < 1e-9);
        assert!((probe("x", 5).unwrap() - 0.4).abs() < 1e-9);
        assert!((probe("x", 9).unwrap() - 0.8).abs() < 1e-9);
        assert!((probe("y", 3).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(probe("z", 2), None, "z only exists in s");
    }

    #[test]
    fn intersection_multiplies_probabilities_on_shared_intervals() {
        let (r, s, _) = fixtures();
        let i = tp_intersection(&r, &s).unwrap();
        assert_eq!(i.len(), 1);
        let t = i.tuple(0);
        assert_eq!(t.fact(0), &Value::str("x"));
        assert_eq!(t.interval(), Interval::new(4, 8));
        assert!((t.probability() - 0.4).abs() < 1e-9);
        assert_eq!(i.schema().arity(), 1);
    }

    #[test]
    fn union_covers_every_point_of_both_inputs_with_or_semantics() {
        let (r, s, _) = fixtures();
        let u = tp_union(&r, &s).unwrap();
        // probability of fact x at t=5: P(r1 ∨ s1) = 1 - 0.2*0.5 = 0.9
        let x_at_5 = u
            .iter()
            .find(|t| t.fact(0) == &Value::str("x") && t.valid_at(5))
            .unwrap();
        assert!((x_at_5.probability() - 0.9).abs() < 1e-9);
        // every point of every input tuple is covered
        for (rel, key_col) in [(&r, 0usize), (&s, 0usize)] {
            for tuple in rel.iter() {
                for t in tuple.interval().points() {
                    assert!(
                        u.iter()
                            .any(|o| o.fact(key_col) == tuple.fact(0) && o.valid_at(t)),
                        "point {t} of {:?} not covered by the union",
                        tuple.fact(0)
                    );
                }
            }
        }
        // the union is duplicate-free per fact
        assert!(tpdb_storage::check_duplicate_free(&u).is_empty());
    }

    #[test]
    fn incompatible_schemas_are_rejected() {
        let (r, _, mut syms) = fixtures();
        let mut wide = TpRelation::new(
            "w",
            Schema::tp(&[("k", DataType::Str), ("extra", DataType::Int)]),
        );
        wide.push(TpTuple::new(
            vec![Value::str("x"), Value::Int(1)],
            Lineage::var(syms.intern("w1")),
            Interval::new(0, 2),
            0.5,
        ))
        .unwrap();
        assert!(tp_difference(&r, &wide).is_err());
        assert!(tp_intersection(&r, &wide).is_err());
        assert!(tp_union(&r, &wide).is_err());
    }

    #[test]
    fn difference_with_empty_negative_is_identity() {
        let (r, _, _) = fixtures();
        let empty = TpRelation::new("s", r.schema().clone());
        let d = tp_difference(&r, &empty).unwrap();
        assert_eq!(d.len(), r.len());
        for (a, b) in d.iter().zip(r.iter()) {
            assert_eq!(a.interval(), b.interval());
            assert!((a.probability() - b.probability()).abs() < 1e-12);
        }
    }

    #[test]
    fn set_ops_ignore_probability_of_unrelated_vars() {
        // regression guard: lineage variables from one side must not leak
        // into the other side's unmatched windows
        let (r, s, _) = fixtures();
        let u = tp_union(&r, &s).unwrap();
        let z = u
            .iter()
            .find(|t| t.fact(0) == &Value::str("z"))
            .expect("z survives the union");
        assert_eq!(z.lineage().vars().len(), 1);
        assert!((z.probability() - 0.9).abs() < 1e-9);
        let _ = VarId(0);
    }
}
