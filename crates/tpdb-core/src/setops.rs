//! Temporal-probabilistic set operations.
//!
//! The generalized lineage-aware temporal windows of this crate were
//! introduced as the TP-join counterpart of the window mechanism the same
//! authors used for *set operations* in temporal-probabilistic databases
//! (Papaioannou, Theobald, Böhlen — ICDE 2018, reference [1] of the paper).
//! This module closes the loop and expresses the three TP set operations on
//! union-compatible relations through the join machinery:
//!
//! * **difference** `r ∖ s` — at each time point, the probability that the
//!   fact is true in `r` and not true in `s`: the TP anti join with θ
//!   requiring equality on *all* fact attributes;
//! * **intersection** `r ∩ s` — the fact is true in both: the TP inner join
//!   with the all-attribute equality condition, projected back to `r`'s
//!   schema;
//! * **union** `r ∪ s` — the fact is true in `r` or in `s`: per time point
//!   the lineage `λr ∨ λs`, assembled from the overlapping, unmatched and
//!   negating windows of both sides.
//!
//! All three operations execute lazily through [`TpSetOpStream`] — the set
//! operation counterpart of [`TpJoinStream`] and the engine behind the
//! query layer's set-operation result cursors. The one-shot functions
//! ([`tp_union`], [`tp_intersection`], [`tp_difference`]) simply drain the
//! stream; nothing is materialized besides the output itself.
//!
//! All three are also *shardable*: [`crate::tp_set_op_parallel`] runs the
//! identical window-by-window formation as work-stealing morsel passes
//! (difference and intersection through the anti/inner join machinery, the
//! union as its two tagged window passes) with byte-identical output.

use crate::join::TpJoinKind;
use crate::overlap::OverlapJoinPlan;
use crate::stream::{Pipe, PipeDepth, TpJoinStream};
use crate::theta::ThetaCondition;
use crate::window::WindowKind;
use crate::{lawan, lawau, overlapping_windows};
use std::borrow::{Borrow, BorrowMut};
use tpdb_lineage::{Lineage, ProbabilityEngine};
use tpdb_storage::{Schema, StorageError, TpRelation, TpTuple};

/// Which TP set operation to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpSetOpKind {
    /// `r ∪ s` — the fact is true in `r` or in `s`.
    Union,
    /// `r ∩ s` — the fact is true in both relations.
    Intersection,
    /// `r ∖ s` — the fact is true in `r` and not in `s`.
    Difference,
}

impl TpSetOpKind {
    /// The operator symbol used in relation names and plan explanations.
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            TpSetOpKind::Union => "∪",
            TpSetOpKind::Intersection => "∩",
            TpSetOpKind::Difference => "∖",
        }
    }

    /// The SQL keyword of the operation in the query language
    /// (`UNION` / `INTERSECT` / `EXCEPT`).
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            TpSetOpKind::Union => "UNION",
            TpSetOpKind::Intersection => "INTERSECT",
            TpSetOpKind::Difference => "EXCEPT",
        }
    }
}

impl std::fmt::Display for TpSetOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Checks that two schemas are union-compatible for the positional TP set
/// operations: same arity and, per position, the same value type.
///
/// Column *names* may differ — the set operations are positional, like
/// SQL's bag operations. (The query layer additionally requires matching
/// names so that the output schema is unambiguous.)
///
/// # Errors
///
/// [`StorageError::ArityMismatch`] on differing arity;
/// [`StorageError::UnionIncompatible`] naming the offending column (after
/// the left schema) on a value-type mismatch.
pub fn check_union_compatible(left: &Schema, right: &Schema) -> Result<(), StorageError> {
    if left.arity() != right.arity() {
        return Err(StorageError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    for (lf, rf) in left.fields().iter().zip(right.fields()) {
        if lf.dtype != rf.dtype {
            return Err(StorageError::UnionIncompatible {
                column: lf.name.clone(),
                detail: format!("left is {}, right is {}", lf.dtype, rf.dtype),
            });
        }
    }
    Ok(())
}

/// Builds the θ condition equating every fact attribute of two
/// union-compatible relations, rejecting inputs whose schemas differ in
/// arity or per-position value type (a type mismatch would otherwise slip
/// through to runtime comparison, where `INT 1 = STR '1'` silently never
/// matches).
pub fn all_columns_equal(r: &TpRelation, s: &TpRelation) -> Result<ThetaCondition, StorageError> {
    check_union_compatible(r.schema(), s.schema())?;
    let mut theta = ThetaCondition::always();
    for (rf, sf) in r.schema().fields().iter().zip(s.schema().fields()) {
        theta = theta.and_compare(&rf.name, crate::theta::CompareOp::Eq, &sf.name);
    }
    Ok(theta)
}

/// TP set difference `r ∖Tp s` on union-compatible relations.
///
/// The result contains, per fact and time point, the probability that the
/// fact holds in `r` and does not hold in `s` — i.e. the TP anti join under
/// all-attribute equality. Executes streaming via [`TpSetOpStream`].
pub fn tp_difference(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    Ok(TpSetOpStream::new(r, s, TpSetOpKind::Difference)?.collect_relation())
}

/// TP set intersection `r ∩Tp s` on union-compatible relations: per fact and
/// time point, the probability that the fact holds in both relations.
/// Executes streaming via [`TpSetOpStream`].
pub fn tp_intersection(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    Ok(TpSetOpStream::new(r, s, TpSetOpKind::Intersection)?.collect_relation())
}

/// TP set union `r ∪Tp s` on union-compatible relations: per fact and time
/// point, the probability that the fact holds in `r` **or** in `s`
/// (lineage `λr ∨ λs` where both are valid, and the single-side lineage
/// elsewhere). Executes streaming via [`TpSetOpStream`] — no window list is
/// materialized (the pre-streaming implementation survives as
/// [`tp_union_materialized`], the reference of the CI regression guard).
pub fn tp_union(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    Ok(TpSetOpStream::new(r, s, TpSetOpKind::Union)?.collect_relation())
}

/// The pre-streaming TP set union: both window passes are fully
/// materialized before any output tuple is formed.
///
/// Kept as the reference implementation: the streamed [`tp_union`] must
/// produce the identical relation (tested here) and must not be slower
/// (the `--check-union-streaming` guard of the `setops` experiment).
pub fn tp_union_materialized(r: &TpRelation, s: &TpRelation) -> Result<TpRelation, StorageError> {
    let theta = all_columns_equal(r, s)?;
    let mut engine = ProbabilityEngine::new();
    r.register_probabilities(&mut engine);
    s.register_probabilities(&mut engine);

    let schema: Schema = r.schema().clone();
    let mut out = TpRelation::new(&format!("{}∪{}", r.name(), s.name()), schema);

    // Windows of r with respect to s give, per r fact, the sub-intervals
    // where s is absent (unmatched → λr), present (negating → λr ∨ λs), and
    // the pairings themselves (overlapping — skipped: the negating windows of
    // the same group cover the identical sub-intervals and already carry the
    // full disjunction λs of the matching s tuples).
    // Legacy materialized path: output formation builds the result trees
    // here (the streaming union below works on interned ids instead).
    for w in lawan(&lawau(&overlapping_windows(r, s, &theta)?, r)) {
        let lineage = match w.kind {
            WindowKind::Unmatched => w.lambda_r.clone(), // tpdb-lint: allow(no-lineage-clone-in-streams)
            WindowKind::Negating => Lineage::or2(
                // tpdb-lint: allow(no-lineage-clone-in-streams)
                w.lambda_r.clone(),
                // Window-kind invariant.
                // tpdb-lint: allow(no-lineage-clone-in-streams, no-panic-in-lib)
                w.lambda_s.clone().expect("negating windows carry λs"),
            ),
            WindowKind::Overlapping => continue,
        };
        let probability = engine.probability(&lineage);
        out.push_unchecked(TpTuple::new(
            r.tuple(w.r_idx).facts().to_vec(),
            lineage,
            w.interval,
            probability,
        ));
    }

    // Windows of s with respect to r: only the unmatched parts are new; the
    // overlapping/negating parts were already covered from r's perspective.
    let flipped = theta.flipped();
    let s_windows = lawau(&overlapping_windows(s, r, &flipped)?, s);
    for w in s_windows.iter().filter(|w| w.kind == WindowKind::Unmatched) {
        let st = s.tuple(w.r_idx);
        // Legacy materialized output formation (see the first pass).
        // tpdb-lint: allow(no-lineage-clone-in-streams)
        let lineage = w.lambda_r.clone();
        let probability = engine.probability(&lineage);
        out.push_unchecked(TpTuple::new(
            st.facts().to_vec(),
            lineage,
            w.interval,
            probability,
        ));
    }
    Ok(out)
}

/// The two window passes of the streaming union.
struct UnionStream<R, S>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
{
    /// Windows of `r` with respect to `s` — the full `WO → LAWAU → LAWAN`
    /// pipeline; `None` once exhausted.
    left: Option<Pipe<R, S>>,
    /// Windows of `s` with respect to `r` — overlap join → LAWAU only
    /// (solely the unmatched sub-intervals are new); `None` once exhausted.
    right: Option<Pipe<S, R>>,
}

/// Execution plan of a [`TpSetOpStream`]: difference and intersection ride
/// directly on [`TpJoinStream`]; the union runs its own two window passes.
// One Inner exists per stream; the size difference between the variants is
// irrelevant at that cardinality.
#[allow(clippy::large_enum_variant)]
enum Inner<R, S, E>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    /// Difference: the TP anti join under all-attribute equality.
    Join(TpJoinStream<R, S, E>),
    /// Intersection: the TP inner join, projected back to `r`'s arity.
    Project {
        /// The inner join stream.
        stream: TpJoinStream<R, S, E>,
        /// `r`'s arity — the prefix of the joined facts to keep.
        arity: usize,
    },
    /// Union: the two window passes plus output formation.
    Union {
        /// The window passes.
        passes: UnionStream<R, S>,
        /// Both input relations (facts are formed by index).
        r: R,
        /// The right input.
        s: S,
        /// Probability engine for the formed lineages.
        engine: E,
        /// Windows pulled out of the pipeline so far.
        windows_consumed: usize,
    },
}

/// A TP set operation executed lazily: an iterator producing the output
/// tuples of [`tp_union`] / [`tp_intersection`] / [`tp_difference`] one at
/// a time, in the identical order. Collecting the stream
/// ([`TpSetOpStream::collect_relation`]) gives exactly the relation the
/// one-shot functions return — they are implemented as this collect.
///
/// Difference and intersection ride on [`TpJoinStream`] (the TP anti and
/// inner join under the all-attribute equality θ); the union drives its own
/// two window passes — `WO → LAWAU → LAWAN` of `r` against `s`, then
/// `WO → LAWAU` of `s` against `r` for the right side's unmatched
/// sub-intervals. Like the join stream, the probe indexes are built eagerly
/// at construction; everything downstream is lazy.
///
/// ```
/// use tpdb_core::{TpSetOpKind, TpSetOpStream};
///
/// let (a, b) = tpdb_datagen::booking_example();
/// let mut stream = TpSetOpStream::new(&a, &b, TpSetOpKind::Difference).unwrap();
/// let first = stream.next().unwrap();
/// assert!((0.0..=1.0).contains(&first.probability()));
/// // Draining the stream gives exactly `tp_difference(&a, &b)`.
/// let rest = stream.count();
/// assert_eq!(1 + rest, tpdb_core::tp_difference(&a, &b).unwrap().len());
/// ```
pub struct TpSetOpStream<R, S, E = ProbabilityEngine>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    inner: Inner<R, S, E>,
    schema: Schema,
    name: String,
}

impl<R, S> TpSetOpStream<R, S, ProbabilityEngine>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
{
    /// Creates the stream with an owned probability engine preloaded with
    /// the base-tuple probabilities of the two inputs, and the
    /// automatically chosen overlap-join plan (sweep — the all-attribute
    /// equality θ is always an equi-join).
    pub fn new(r: R, s: S, kind: TpSetOpKind) -> Result<Self, StorageError> {
        Self::with_plan(r, s, kind, None)
    }

    /// [`TpSetOpStream::new`] with an explicitly chosen overlap-join plan
    /// (`None` lets the engine pick).
    pub fn with_plan(
        r: R,
        s: S,
        kind: TpSetOpKind,
        plan: Option<OverlapJoinPlan>,
    ) -> Result<Self, StorageError> {
        let mut engine = ProbabilityEngine::new();
        r.borrow().register_probabilities(&mut engine);
        s.borrow().register_probabilities(&mut engine);
        Self::with_engine_and_plan(r, s, kind, plan, engine)
    }
}

impl<R, S, E> TpSetOpStream<R, S, E>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    /// Creates the stream with an explicit probability engine (owned or
    /// `&mut`-borrowed) and an optional forced overlap-join plan. Use this
    /// variant when the inputs are derived relations whose compound
    /// lineages reference base tuples not present in `r`/`s`.
    ///
    /// # Errors
    ///
    /// [`StorageError::ArityMismatch`] / [`StorageError::UnionIncompatible`]
    /// when the inputs are not union-compatible;
    /// [`StorageError::PlanNotApplicable`] never occurs for the automatic
    /// plan (the all-attribute equality θ is an equi-join).
    pub fn with_engine_and_plan(
        r: R,
        s: S,
        kind: TpSetOpKind,
        plan: Option<OverlapJoinPlan>,
        mut engine: E,
    ) -> Result<Self, StorageError> {
        let theta = all_columns_equal(r.borrow(), s.borrow())?;
        let schema = r.borrow().schema().clone();
        let name = format!(
            "{}{}{}",
            r.borrow().name(),
            kind.symbol(),
            s.borrow().name()
        );
        let inner = match kind {
            TpSetOpKind::Difference => Inner::Join(TpJoinStream::with_engine_and_plan(
                r,
                s,
                &theta,
                TpJoinKind::Anti,
                plan,
                engine,
            )?),
            TpSetOpKind::Intersection => {
                let arity = schema.arity();
                Inner::Project {
                    stream: TpJoinStream::with_engine_and_plan(
                        r,
                        s,
                        &theta,
                        TpJoinKind::Inner,
                        plan,
                        engine,
                    )?,
                    arity,
                }
            }
            TpSetOpKind::Union => {
                let left = Pipe::build(
                    r.clone(),
                    s.clone(),
                    &theta,
                    plan,
                    PipeDepth::Full,
                    engine.borrow_mut().interner_mut(),
                )?;
                let right = Pipe::build(
                    s.clone(),
                    r.clone(),
                    &theta.flipped(),
                    plan,
                    PipeDepth::Unmatched,
                    engine.borrow_mut().interner_mut(),
                )?;
                Inner::Union {
                    passes: UnionStream {
                        left: Some(left),
                        right: Some(right),
                    },
                    r,
                    s,
                    engine,
                    windows_consumed: 0,
                }
            }
        };
        Ok(Self {
            inner,
            schema,
            name,
        })
    }

    /// The fact schema of the output tuples (always the left input's).
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The name the collected result relation carries (`r∪s`, `r∩s`,
    /// `r∖s`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many windows have left the underlying pipeline so far — the
    /// laziness probe: after pulling the first output tuple of a union,
    /// only the windows inspected to form it have been consumed (at least
    /// 1; skipped overlapping windows count too) — not the total window
    /// count of the operation.
    #[must_use]
    pub fn windows_consumed(&self) -> usize {
        match &self.inner {
            Inner::Join(stream) => stream.windows_consumed(),
            Inner::Project { stream, .. } => stream.windows_consumed(),
            Inner::Union {
                windows_consumed, ..
            } => *windows_consumed,
        }
    }

    /// Drains the remaining stream into a materialized relation — the exact
    /// relation the one-shot set operation functions return when called on
    /// fresh inputs.
    #[must_use]
    pub fn collect_relation(self) -> TpRelation {
        let name = self.name.clone();
        let mut out = TpRelation::new(&name, self.schema.clone());
        for t in self {
            out.push_unchecked(t);
        }
        out
    }
}

impl<R, S, E> Iterator for TpSetOpStream<R, S, E>
where
    R: Borrow<TpRelation> + Clone,
    S: Borrow<TpRelation> + Clone,
    E: BorrowMut<ProbabilityEngine>,
{
    type Item = TpTuple;

    fn next(&mut self) -> Option<TpTuple> {
        match &mut self.inner {
            Inner::Join(stream) => stream.next(),
            Inner::Project { stream, arity } => stream.next().map(|t| {
                TpTuple::new(
                    t.facts()[..*arity].to_vec(),
                    // Output formation: re-wraps a finished tuple's tree.
                    // tpdb-lint: allow(no-lineage-clone-in-streams)
                    t.lineage().clone(),
                    t.interval(),
                    t.probability(),
                )
            }),
            Inner::Union {
                passes,
                r,
                s,
                engine,
                windows_consumed,
            } => {
                // First pass: windows of r with respect to s. Overlapping
                // windows are skipped — the negating windows of the same
                // group cover the identical sub-intervals and already carry
                // the full disjunction λs of the matching s tuples.
                while let Some(pipe) = &mut passes.left {
                    match pipe.next_with(engine.borrow_mut().interner_mut()) {
                        Some(w) => {
                            *windows_consumed += 1;
                            let eng = engine.borrow_mut();
                            let lineage_ref = match w.kind {
                                WindowKind::Unmatched => w.lambda_r,
                                WindowKind::Negating => eng.interner_mut().or2(
                                    w.lambda_r,
                                    // Window-kind invariant.
                                    // tpdb-lint: allow(no-panic-in-lib)
                                    w.lambda_s.expect("negating windows carry λs"),
                                ),
                                WindowKind::Overlapping => continue,
                            };
                            let probability = eng.probability_ref(lineage_ref);
                            // Output-formation boundary: ids become trees
                            // exactly once, on the emitted tuple.
                            // tpdb-lint: allow(no-lineage-clone-in-streams)
                            let lineage = eng.to_lineage(lineage_ref);
                            let facts = <R as Borrow<TpRelation>>::borrow(r).tuple(w.r_idx).facts();
                            return Some(TpTuple::new(
                                facts.to_vec(),
                                lineage,
                                w.interval,
                                probability,
                            ));
                        }
                        None => passes.left = None,
                    }
                }
                // Second pass: only the unmatched sub-intervals of s are
                // new; everything else was covered from r's perspective.
                while let Some(pipe) = &mut passes.right {
                    match pipe.next_with(engine.borrow_mut().interner_mut()) {
                        Some(w) => {
                            *windows_consumed += 1;
                            if w.kind != WindowKind::Unmatched {
                                continue;
                            }
                            let eng = engine.borrow_mut();
                            let probability = eng.probability_ref(w.lambda_r);
                            // Output-formation boundary (see the first pass).
                            // tpdb-lint: allow(no-lineage-clone-in-streams)
                            let lineage = eng.to_lineage(w.lambda_r);
                            let facts = <S as Borrow<TpRelation>>::borrow(s).tuple(w.r_idx).facts();
                            return Some(TpTuple::new(
                                facts.to_vec(),
                                lineage,
                                w.interval,
                                probability,
                            ));
                        }
                        None => passes.right = None,
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tpdb_lineage::{SymbolTable, VarId};
    use tpdb_storage::{DataType, Value};
    use tpdb_temporal::Interval;

    /// Two union-compatible single-column relations:
    /// r: (x, [0,10), 0.8), (y, [2,6), 0.5)
    /// s: (x, [4,8), 0.5), (z, [0,4), 0.9)
    fn fixtures() -> (TpRelation, TpRelation, SymbolTable) {
        let mut syms = SymbolTable::new();
        let mut r = TpRelation::new("r", Schema::tp(&[("k", DataType::Str)]));
        r.push(TpTuple::new(
            vec![Value::str("x")],
            Lineage::var(syms.intern("r1")),
            Interval::new(0, 10),
            0.8,
        ))
        .unwrap();
        r.push(TpTuple::new(
            vec![Value::str("y")],
            Lineage::var(syms.intern("r2")),
            Interval::new(2, 6),
            0.5,
        ))
        .unwrap();
        let mut s = TpRelation::new("s", Schema::tp(&[("k", DataType::Str)]));
        s.push(TpTuple::new(
            vec![Value::str("x")],
            Lineage::var(syms.intern("s1")),
            Interval::new(4, 8),
            0.5,
        ))
        .unwrap();
        s.push(TpTuple::new(
            vec![Value::str("z")],
            Lineage::var(syms.intern("s2")),
            Interval::new(0, 4),
            0.9,
        ))
        .unwrap();
        (r, s, syms)
    }

    #[test]
    fn difference_keeps_r_probability_where_s_is_absent() {
        let (r, s, _) = fixtures();
        let d = tp_difference(&r, &s).unwrap();
        // fact x: unmatched over [0,4) and [8,10) with p = 0.8, negated over
        // [4,8) with p = 0.8 * 0.5 = 0.4; fact y: unmatched over [2,6).
        let probe = |key: &str, t: i64| -> Option<f64> {
            d.iter()
                .find(|tp| tp.fact(0) == &Value::str(key) && tp.valid_at(t))
                .map(|tp| tp.probability())
        };
        assert!((probe("x", 1).unwrap() - 0.8).abs() < 1e-9);
        assert!((probe("x", 5).unwrap() - 0.4).abs() < 1e-9);
        assert!((probe("x", 9).unwrap() - 0.8).abs() < 1e-9);
        assert!((probe("y", 3).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(probe("z", 2), None, "z only exists in s");
    }

    #[test]
    fn intersection_multiplies_probabilities_on_shared_intervals() {
        let (r, s, _) = fixtures();
        let i = tp_intersection(&r, &s).unwrap();
        assert_eq!(i.len(), 1);
        let t = i.tuple(0);
        assert_eq!(t.fact(0), &Value::str("x"));
        assert_eq!(t.interval(), Interval::new(4, 8));
        assert!((t.probability() - 0.4).abs() < 1e-9);
        assert_eq!(i.schema().arity(), 1);
    }

    #[test]
    fn union_covers_every_point_of_both_inputs_with_or_semantics() {
        let (r, s, _) = fixtures();
        let u = tp_union(&r, &s).unwrap();
        // probability of fact x at t=5: P(r1 ∨ s1) = 1 - 0.2*0.5 = 0.9
        let x_at_5 = u
            .iter()
            .find(|t| t.fact(0) == &Value::str("x") && t.valid_at(5))
            .unwrap();
        assert!((x_at_5.probability() - 0.9).abs() < 1e-9);
        // every point of every input tuple is covered
        for (rel, key_col) in [(&r, 0usize), (&s, 0usize)] {
            for tuple in rel.iter() {
                for t in tuple.interval().points() {
                    assert!(
                        u.iter()
                            .any(|o| o.fact(key_col) == tuple.fact(0) && o.valid_at(t)),
                        "point {t} of {:?} not covered by the union",
                        tuple.fact(0)
                    );
                }
            }
        }
        // the union is duplicate-free per fact
        assert!(tpdb_storage::check_duplicate_free(&u).is_empty());
    }

    #[test]
    fn streamed_set_ops_match_the_materialized_union_reference() {
        let (r, s, _) = fixtures();
        assert_eq!(
            tp_union(&r, &s).unwrap(),
            tp_union_materialized(&r, &s).unwrap()
        );
        // A larger adversarial sample: the meteo generator produces dense
        // same-key interval sequences with shared endpoints.
        let (mr, ms) = tpdb_datagen::meteo_like(600, 7);
        assert_eq!(
            tp_union(&mr, &ms).unwrap(),
            tp_union_materialized(&mr, &ms).unwrap()
        );
    }

    #[test]
    fn union_stream_produces_the_first_tuple_lazily() {
        let (r, s) = tpdb_datagen::meteo_like(2_000, 7);
        let mut stream = TpSetOpStream::new(&r, &s, TpSetOpKind::Union).unwrap();
        let first = stream.next();
        assert!(first.is_some());
        // Forming the first tuple consumes only the windows preceding it
        // in the pipeline (skipped overlapping windows included) — a
        // handful, not the full window mass of the operation.
        let consumed_at_first = stream.windows_consumed();
        assert!(consumed_at_first >= 1);
        let produced = 1 + stream.by_ref().count();
        assert!(produced > 1_000, "expected a large union, got {produced}");
        let consumed_total = stream.windows_consumed();
        assert!(
            consumed_at_first * 100 <= consumed_total,
            "first tuple consumed {consumed_at_first} of {consumed_total} windows — not lazy"
        );
    }

    #[test]
    fn set_op_streams_work_with_arc_inputs() {
        let (r, s, _) = fixtures();
        for (kind, reference) in [
            (TpSetOpKind::Union, tp_union(&r, &s).unwrap()),
            (TpSetOpKind::Intersection, tp_intersection(&r, &s).unwrap()),
            (TpSetOpKind::Difference, tp_difference(&r, &s).unwrap()),
        ] {
            let (ar, ars) = (Arc::new(r.clone()), Arc::new(s.clone()));
            let streamed = TpSetOpStream::new(ar, ars, kind)
                .unwrap()
                .collect_relation();
            assert_eq!(streamed, reference, "kind = {kind:?}");
        }
    }

    #[test]
    fn incompatible_schemas_are_rejected() {
        let (r, _, mut syms) = fixtures();
        let mut wide = TpRelation::new(
            "w",
            Schema::tp(&[("k", DataType::Str), ("extra", DataType::Int)]),
        );
        wide.push(TpTuple::new(
            vec![Value::str("x"), Value::Int(1)],
            Lineage::var(syms.intern("w1")),
            Interval::new(0, 2),
            0.5,
        ))
        .unwrap();
        assert!(tp_difference(&r, &wide).is_err());
        assert!(tp_intersection(&r, &wide).is_err());
        assert!(tp_union(&r, &wide).is_err());
    }

    #[test]
    fn mismatched_value_types_are_rejected_naming_the_column() {
        // Regression guard: arity matches but the value types differ — the
        // old all_columns_equal let this slip through to runtime comparison,
        // where INT 1 = STR '1' silently never matches.
        let (r, _, mut syms) = fixtures();
        let mut numeric = TpRelation::new("n", Schema::tp(&[("k", DataType::Int)]));
        numeric
            .push(TpTuple::new(
                vec![Value::Int(1)],
                Lineage::var(syms.intern("n1")),
                Interval::new(0, 2),
                0.5,
            ))
            .unwrap();
        for result in [
            tp_union(&r, &numeric),
            tp_intersection(&r, &numeric),
            tp_difference(&r, &numeric),
        ] {
            match result {
                Err(StorageError::UnionIncompatible { column, detail }) => {
                    assert_eq!(column, "k");
                    assert!(detail.contains("STR"), "{detail}");
                    assert!(detail.contains("INT"), "{detail}");
                }
                other => panic!("expected UnionIncompatible, got {other:?}"),
            }
        }
    }

    #[test]
    fn difference_with_empty_negative_is_identity() {
        let (r, _, _) = fixtures();
        let empty = TpRelation::new("s", r.schema().clone());
        let d = tp_difference(&r, &empty).unwrap();
        assert_eq!(d.len(), r.len());
        for (a, b) in d.iter().zip(r.iter()) {
            assert_eq!(a.interval(), b.interval());
            assert!((a.probability() - b.probability()).abs() < 1e-12);
        }
    }

    #[test]
    fn set_ops_ignore_probability_of_unrelated_vars() {
        // regression guard: lineage variables from one side must not leak
        // into the other side's unmatched windows
        let (r, s, _) = fixtures();
        let u = tp_union(&r, &s).unwrap();
        let z = u
            .iter()
            .find(|t| t.fact(0) == &Value::str("z"))
            .expect("z survives the union");
        assert_eq!(z.lineage().vars().len(), 1);
        assert!((z.probability() - 0.9).abs() < 1e-9);
        let _ = VarId(0);
    }

    #[test]
    fn stream_names_and_schemas_are_available_before_iteration() {
        let (r, s, _) = fixtures();
        let stream = TpSetOpStream::new(&r, &s, TpSetOpKind::Union).unwrap();
        assert_eq!(stream.name(), "r∪s");
        assert_eq!(stream.schema().arity(), 1);
        assert_eq!(TpSetOpKind::Union.keyword(), "UNION");
        assert_eq!(TpSetOpKind::Intersection.to_string(), "INTERSECT");
        assert_eq!(TpSetOpKind::Difference.symbol(), "∖");
    }
}
