//! Hash-consed lineage arena.
//!
//! The window pipeline builds and prices the *same* sub-formulas over and
//! over: every window of an `r`-tuple group carries that tuple's `λr`,
//! every negating window re-disjoins the lineages of the active `s`
//! tuples, and the probability memo is consulted once per output tuple.
//! Representing those formulas as [`Lineage`] trees makes every equality
//! check, hash and memo lookup a full structural traversal.
//!
//! A [`LineageInterner`] stores each structurally distinct formula node
//! exactly once in a flat arena and hands out dense `u32` ids
//! ([`LineageRef`]). Hash-consing turns structural equality into id
//! equality (`O(1)`), makes cloning a formula a `Copy`, and lets the
//! probability engine key its memo by id instead of deep hashing. The
//! cons table is keyed by cached per-node structural hashes using a
//! vendored FxHash-style hasher (the dependency-free mix used by rustc's
//! `FxHashMap`), so interning a node costs one multiply-rotate per child.
//!
//! The arena only ever grows: ids stay valid for the interner's lifetime,
//! which is the lifetime of one join/set-operation execution (the
//! [`crate::ProbabilityEngine`] owns the interner and both are dropped
//! together). The legacy [`Lineage`] tree remains the *conversion
//! boundary*: output tuples, serde and the equality-based tests convert
//! back through [`LineageInterner::to_lineage`], which caches conversions
//! per node so shared sub-formulas become shared `Arc`s.

use crate::formula::{Lineage, LineageNode};
use crate::symbols::VarId;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the FxHash mix (the 64-bit golden-ratio constant used
/// by rustc's `FxHasher`).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// A vendored FxHash-style hasher (multiply-rotate mix, no allocation, no
/// external dependency). Not cryptographic — used only for the interner's
/// cons table and id-keyed side tables, whose keys are small integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = fx_mix(self.hash, u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.hash = fx_mix(self.hash, u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.hash = fx_mix(self.hash, u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.hash = fx_mix(self.hash, u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = fx_mix(self.hash, i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.hash = fx_mix(self.hash, i as u64);
    }
}

/// A `HashMap` using the vendored [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using the vendored [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// A dense id referring to a node in a [`LineageInterner`].
///
/// Refs are `Copy`, compare in `O(1)` (hash-consing makes structural
/// equality id equality *within one interner*) and index the engine's
/// probability memo directly. A ref is only meaningful together with the
/// interner that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineageRef(u32);

impl LineageRef {
    /// The position of the node in the arena (usable as a dense table
    /// index).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node of an interned lineage formula. Children are [`LineageRef`]s
/// into the same arena; the same normalization invariants as
/// [`LineageNode`] hold (`And`/`Or` have ≥ 2 deduplicated, constant-free,
/// non-nested children; `Not` never wraps a constant or another `Not`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InternedNode {
    /// The formula that is true in every possible world.
    True,
    /// The formula that is false in every possible world.
    False,
    /// A base-tuple variable.
    Var(VarId),
    /// Negation of a sub-formula.
    Not(LineageRef),
    /// Conjunction of at least two sub-formulas.
    And(Box<[LineageRef]>),
    /// Disjunction of at least two sub-formulas.
    Or(Box<[LineageRef]>),
}

/// Order-preserving duplicate elimination over refs (the interned
/// counterpart of the tree constructors' `Deduper` — membership is a
/// cheap integer-hash lookup).
struct RefDedup {
    ordered: Vec<LineageRef>,
    seen: HashSet<LineageRef, BuildHasherDefault<FxHasher>>,
}

impl RefDedup {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            ordered: Vec::with_capacity(capacity),
            seen: HashSet::with_capacity_and_hasher(capacity, BuildHasherDefault::default()),
        }
    }

    fn push(&mut self, r: LineageRef) {
        if self.seen.insert(r) {
            self.ordered.push(r);
        }
    }
}

/// A hash-consed arena of lineage formula nodes.
///
/// Structurally equal formulas intern to the same [`LineageRef`]; the
/// constructors apply exactly the structural simplifications of the
/// [`Lineage`] tree constructors (flattening, unit elimination, ordered
/// deduplication, double-negation elimination), so a formula built in
/// interned space converts back ([`to_lineage`](Self::to_lineage)) to the
/// very tree the legacy constructors would have produced.
#[derive(Debug, Clone)]
pub struct LineageInterner {
    nodes: Vec<InternedNode>,
    /// Cached structural hash per node (mixes the tag with the *child
    /// hashes*, so it is stable across interners).
    hashes: Vec<u64>,
    /// Cons table: structural hash → candidate node ids.
    table: FxHashMap<u64, Vec<u32>>,
    /// Conversion cache: interned node → legacy tree (shared `Arc`s).
    legacy: Vec<Option<Lineage>>,
}

/// The pre-interned constant `true` (id 0 in every interner).
const TRUE: LineageRef = LineageRef(0);
/// The pre-interned constant `false` (id 1 in every interner).
const FALSE: LineageRef = LineageRef(1);

impl Default for LineageInterner {
    fn default() -> Self {
        let mut interner = Self {
            nodes: Vec::new(),
            hashes: Vec::new(),
            table: FxHashMap::default(),
            legacy: Vec::new(),
        };
        let t = interner.intern_node(InternedNode::True);
        let f = interner.intern_node(InternedNode::False);
        debug_assert_eq!((t, f), (TRUE, FALSE));
        interner
    }
}

impl LineageInterner {
    /// Creates an empty arena (the two constants are pre-interned).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes in the arena (the exclusive upper bound of
    /// all ref indices — size id-keyed side tables with this).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the arena empty? (Never true: the constants are pre-interned.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node a ref points at.
    #[must_use]
    pub fn node(&self, r: LineageRef) -> &InternedNode {
        &self.nodes[r.index()]
    }

    /// Is this the constant-true formula?
    #[must_use]
    pub fn is_true(&self, r: LineageRef) -> bool {
        r == TRUE
    }

    /// Is this the constant-false formula?
    #[must_use]
    pub fn is_false(&self, r: LineageRef) -> bool {
        r == FALSE
    }

    // ----- constructors (mirror the `Lineage` tree constructors) ---------

    /// The constant-true lineage.
    #[must_use]
    pub fn tru(&self) -> LineageRef {
        TRUE
    }

    /// The constant-false lineage.
    #[must_use]
    pub fn fls(&self) -> LineageRef {
        FALSE
    }

    /// An atomic lineage: a single base-tuple variable.
    pub fn var(&mut self, v: VarId) -> LineageRef {
        self.intern_node(InternedNode::Var(v))
    }

    /// Negation with structural simplification:
    /// `¬true = false`, `¬false = true`, `¬¬φ = φ`.
    pub fn not(&mut self, operand: LineageRef) -> LineageRef {
        match &self.nodes[operand.index()] {
            InternedNode::True => FALSE,
            InternedNode::False => TRUE,
            InternedNode::Not(inner) => *inner,
            _ => self.intern_node(InternedNode::Not(operand)),
        }
    }

    /// N-ary conjunction with flattening, unit elimination and
    /// deduplication (deduplication is by ref — hash-consing makes that
    /// structural). `and(&[])` is `true`; a conjunction containing `false`
    /// collapses to `false`.
    pub fn and(&mut self, operands: &[LineageRef]) -> LineageRef {
        let mut flat = RefDedup::with_capacity(operands.len());
        for &op in operands {
            match &self.nodes[op.index()] {
                InternedNode::True => {}
                InternedNode::False => return FALSE,
                InternedNode::And(children) => {
                    for &c in children.iter() {
                        flat.push(c);
                    }
                }
                _ => flat.push(op),
            }
        }
        match flat.ordered.len() {
            0 => TRUE,
            1 => flat.ordered[0],
            _ => self.intern_node(InternedNode::And(flat.ordered.into_boxed_slice())),
        }
    }

    /// N-ary disjunction with flattening, unit elimination and
    /// deduplication. `or(&[])` is `false`; a disjunction containing
    /// `true` collapses to `true`.
    pub fn or(&mut self, operands: &[LineageRef]) -> LineageRef {
        let mut flat = RefDedup::with_capacity(operands.len());
        for &op in operands {
            match &self.nodes[op.index()] {
                InternedNode::False => {}
                InternedNode::True => return TRUE,
                InternedNode::Or(children) => {
                    for &c in children.iter() {
                        flat.push(c);
                    }
                }
                _ => flat.push(op),
            }
        }
        match flat.ordered.len() {
            0 => FALSE,
            1 => flat.ordered[0],
            _ => self.intern_node(InternedNode::Or(flat.ordered.into_boxed_slice())),
        }
    }

    /// Builds a disjunction from operands that are already flattened (no
    /// nested `Or`, no constants) and deduplicated, skipping the
    /// flattening pass of [`or`](Self::or). This is the emission path of
    /// [`InternedDisjunction`].
    pub fn or_flattened(&mut self, operands: Vec<LineageRef>) -> LineageRef {
        debug_assert!(
            operands.iter().all(|o| !matches!(
                self.nodes[o.index()],
                InternedNode::Or(_) | InternedNode::True | InternedNode::False
            )),
            "or_flattened operands must be flattened and constant-free"
        );
        match operands.len() {
            0 => FALSE,
            1 => operands[0],
            _ => self.intern_node(InternedNode::Or(operands.into_boxed_slice())),
        }
    }

    /// Binary conjunction convenience wrapper.
    pub fn and2(&mut self, a: LineageRef, b: LineageRef) -> LineageRef {
        self.and(&[a, b])
    }

    /// Binary disjunction convenience wrapper.
    pub fn or2(&mut self, a: LineageRef, b: LineageRef) -> LineageRef {
        self.or(&[a, b])
    }

    /// The `andNot` concatenation function used for negating windows:
    /// `λr ∧ ¬λs`.
    pub fn and_not(&mut self, lambda_r: LineageRef, lambda_s: LineageRef) -> LineageRef {
        let neg = self.not(lambda_s);
        self.and(&[lambda_r, neg])
    }

    // ----- conversion boundary -------------------------------------------

    /// Interns a legacy tree, re-normalizing through the interned
    /// constructors (idempotent on already-normalized trees — which every
    /// [`Lineage`] built through its own constructors is).
    pub fn intern(&mut self, lineage: &Lineage) -> LineageRef {
        match lineage.node() {
            LineageNode::True => TRUE,
            LineageNode::False => FALSE,
            LineageNode::Var(v) => self.var(*v),
            LineageNode::Not(c) => {
                let inner = self.intern(c);
                self.not(inner)
            }
            LineageNode::And(cs) => {
                let refs: Vec<LineageRef> = cs.iter().map(|c| self.intern(c)).collect();
                self.and(&refs)
            }
            LineageNode::Or(cs) => {
                let refs: Vec<LineageRef> = cs.iter().map(|c| self.intern(c)).collect();
                self.or(&refs)
            }
        }
    }

    /// Converts an interned formula back into a legacy [`Lineage`] tree.
    ///
    /// Conversions are cached per node, so the trees of shared
    /// sub-formulas (every `λr` of a window group, every disjunction
    /// operand) are shared `Arc`s — converting `n` output tuples allocates
    /// `O(distinct nodes)`, not `O(total tree size)`.
    pub fn to_lineage(&mut self, r: LineageRef) -> Lineage {
        if let Some(l) = &self.legacy[r.index()] {
            return l.clone();
        }
        let node = self.nodes[r.index()].clone();
        let lineage = match node {
            InternedNode::True => Lineage::tru(),
            InternedNode::False => Lineage::fls(),
            InternedNode::Var(v) => Lineage::var(v),
            InternedNode::Not(c) => Lineage::not(self.to_lineage(c)),
            InternedNode::And(cs) => Lineage::and(cs.iter().map(|&c| self.to_lineage(c)).collect()),
            InternedNode::Or(cs) => Lineage::or(cs.iter().map(|&c| self.to_lineage(c)).collect()),
        };
        self.legacy[r.index()] = Some(lineage.clone());
        lineage
    }

    // ----- inspection -----------------------------------------------------

    /// The set of variables mentioned anywhere in the formula (ascending,
    /// matching [`Lineage::vars`]). The walk visits each distinct node
    /// once.
    #[must_use]
    pub fn vars(&self, r: LineageRef) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        let mut visited: HashSet<LineageRef, BuildHasherDefault<FxHasher>> = HashSet::default();
        let mut stack = vec![r];
        while let Some(cur) = stack.pop() {
            if !visited.insert(cur) {
                continue;
            }
            match &self.nodes[cur.index()] {
                InternedNode::True | InternedNode::False => {}
                InternedNode::Var(v) => {
                    out.insert(*v);
                }
                InternedNode::Not(c) => stack.push(*c),
                InternedNode::And(cs) | InternedNode::Or(cs) => stack.extend(cs.iter().copied()),
            }
        }
        out
    }

    /// Conditions the formula on `var = value` (Shannon cofactor),
    /// mirroring [`Lineage::condition`] in interned space.
    pub fn condition(&mut self, r: LineageRef, var: VarId, value: bool) -> LineageRef {
        match self.nodes[r.index()].clone() {
            InternedNode::True | InternedNode::False => r,
            InternedNode::Var(v) => {
                if v == var {
                    if value {
                        TRUE
                    } else {
                        FALSE
                    }
                } else {
                    r
                }
            }
            InternedNode::Not(c) => {
                let inner = self.condition(c, var, value);
                self.not(inner)
            }
            InternedNode::And(cs) => {
                let conditioned: Vec<LineageRef> =
                    cs.iter().map(|&c| self.condition(c, var, value)).collect();
                self.and(&conditioned)
            }
            InternedNode::Or(cs) => {
                let conditioned: Vec<LineageRef> =
                    cs.iter().map(|&c| self.condition(c, var, value)).collect();
                self.or(&conditioned)
            }
        }
    }

    /// Exhaustively checks the arena invariants, returning a description
    /// of the first violation found (`Ok(())` on a healthy arena).
    ///
    /// Checked invariants:
    ///
    /// * the parallel tables (`nodes`, `hashes`, conversion cache) have
    ///   equal lengths;
    /// * ids 0/1 are the pre-interned constants `true`/`false`, and no
    ///   other node is a constant (the constructors always return the
    ///   canonical ids);
    /// * every child ref points strictly below its parent — the arena is
    ///   topologically ordered and can contain no dangling refs;
    /// * `And`/`Or` hold ≥ 2 deduplicated children, none a constant or a
    ///   nested node of the same kind; `Not` wraps neither a constant nor
    ///   another `Not` (the canonical normal form of the tree
    ///   constructors);
    /// * every cached hash equals the recomputed structural hash and the
    ///   cons table lists the id under it (a mismatch would make
    ///   hash-consing silently duplicate nodes, breaking `O(1)` equality);
    /// * every cached legacy conversion has the same top-level shape as
    ///   the node it was converted from.
    ///
    /// The check is `O(arena size)` and intended for debug builds and
    /// property tests; the engine's hot paths never call it.
    // A diagnostic self-check, not an operational API: the payload is a
    // free-form description of the first broken invariant, for assertion
    // messages. tpdb-lint: allow(error-taxonomy)
    pub fn verify_arena(&self) -> Result<(), String> {
        if self.hashes.len() != self.nodes.len() || self.legacy.len() != self.nodes.len() {
            return Err(format!(
                "parallel tables out of sync: {} nodes, {} hashes, {} cached conversions",
                self.nodes.len(),
                self.hashes.len(),
                self.legacy.len()
            ));
        }
        if self.nodes.first() != Some(&InternedNode::True)
            || self.nodes.get(1) != Some(&InternedNode::False)
        {
            return Err("ids 0/1 are not the pre-interned true/false constants".to_owned());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(problem) = self.check_node_shape(i, node) {
                return Err(format!("node {i}: {problem}"));
            }
            let expected = self.structural_hash(node);
            if self.hashes[i] != expected {
                return Err(format!(
                    "node {i}: cached hash {:#x} != recomputed structural hash {expected:#x}",
                    self.hashes[i]
                ));
            }
            let listed = self
                .table
                .get(&expected)
                .is_some_and(|bucket| bucket.contains(&(i as u32)));
            if !listed {
                return Err(format!(
                    "node {i} is missing from its cons-table bucket — interning its structure \
                     again would allocate a duplicate id"
                ));
            }
            if let Some(cached) = &self.legacy[i] {
                let shape_matches = matches!(
                    (node, cached.node()),
                    (InternedNode::True, LineageNode::True)
                        | (InternedNode::False, LineageNode::False)
                        | (InternedNode::Var(_), LineageNode::Var(_))
                        | (InternedNode::Not(_), LineageNode::Not(_))
                        | (InternedNode::And(_), LineageNode::And(_))
                        | (InternedNode::Or(_), LineageNode::Or(_))
                );
                if !shape_matches {
                    return Err(format!(
                        "node {i}: cached legacy conversion has a different top-level shape"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Structural invariants of a single node at position `i` (children
    /// interned below it, canonical normal form). `None` when healthy.
    fn check_node_shape(&self, i: usize, node: &InternedNode) -> Option<String> {
        let child_ok = |c: LineageRef| c.index() < i;
        match node {
            InternedNode::True | InternedNode::False => {
                (i >= 2).then(|| "constant interned outside the canonical ids 0/1".to_owned())
            }
            InternedNode::Var(_) => None,
            InternedNode::Not(c) => {
                if !child_ok(*c) {
                    return Some(format!("child {} does not precede its parent", c.index()));
                }
                matches!(
                    self.nodes[c.index()],
                    InternedNode::True | InternedNode::False | InternedNode::Not(_)
                )
                .then(|| "Not wraps a constant or another Not".to_owned())
            }
            InternedNode::And(cs) | InternedNode::Or(cs) => {
                if cs.len() < 2 {
                    return Some(format!("{}-ary connective", cs.len()));
                }
                let mut seen: FxHashSet<LineageRef> = HashSet::default();
                for &c in cs.iter() {
                    if !child_ok(c) {
                        return Some(format!("child {} does not precede its parent", c.index()));
                    }
                    if !seen.insert(c) {
                        return Some(format!("duplicated child {}", c.index()));
                    }
                    let child = &self.nodes[c.index()];
                    let nested_same_kind = match node {
                        InternedNode::And(_) => matches!(child, InternedNode::And(_)),
                        _ => matches!(child, InternedNode::Or(_)),
                    };
                    if matches!(child, InternedNode::True | InternedNode::False) {
                        return Some(format!("constant child {}", c.index()));
                    }
                    if nested_same_kind {
                        return Some(format!("un-flattened nested child {}", c.index()));
                    }
                }
                None
            }
        }
    }

    // ----- internals ------------------------------------------------------

    /// The cached structural hash of a node (mixes child hashes, so equal
    /// structures hash equal across interners).
    fn structural_hash(&self, node: &InternedNode) -> u64 {
        match node {
            InternedNode::True => fx_mix(0, 1),
            InternedNode::False => fx_mix(0, 2),
            InternedNode::Var(v) => fx_mix(fx_mix(0, 3), u64::from(v.0)),
            InternedNode::Not(c) => fx_mix(fx_mix(0, 4), self.hashes[c.index()]),
            InternedNode::And(cs) => cs
                .iter()
                .fold(fx_mix(0, 5), |h, c| fx_mix(h, self.hashes[c.index()])),
            InternedNode::Or(cs) => cs
                .iter()
                .fold(fx_mix(0, 6), |h, c| fx_mix(h, self.hashes[c.index()])),
        }
    }

    fn intern_node(&mut self, node: InternedNode) -> LineageRef {
        // In debug builds every freshly interned node is checked against
        // the canonical-form invariants (`verify_arena` documents them);
        // checking only the new node keeps interning O(node size).
        #[cfg(debug_assertions)]
        if self.nodes.len() >= 2 {
            if let Some(problem) = self.check_node_shape(self.nodes.len(), &node) {
                debug_assert!(false, "interning a malformed node: {problem}");
            }
        }
        let hash = self.structural_hash(&node);
        if let Some(bucket) = self.table.get(&hash) {
            for &id in bucket {
                if self.nodes[id as usize] == node {
                    return LineageRef(id);
                }
            }
        }
        let id = u32::try_from(self.nodes.len()).expect("interner arena exceeds u32 ids");
        self.nodes.push(node);
        self.hashes.push(hash);
        self.legacy.push(None);
        self.table.entry(hash).or_default().push(id);
        LineageRef(id)
    }
}

/// The id-keyed counterpart of [`crate::IncrementalDisjunction`]: a
/// multiset of interned lineages with an incrementally maintained
/// disjunction. Operands are kept in first-activation order with
/// reference counts (identical slot/compaction discipline, so the emitted
/// operand order — and therefore the converted trees — match the legacy
/// sweep exactly); membership checks hash a single `u32` instead of a
/// formula tree.
#[derive(Debug, Clone, Default)]
pub struct InternedDisjunction {
    /// Distinct non-constant operands in first-insertion order with their
    /// reference counts; `None` marks an expired (tombstoned) slot.
    slots: Vec<Option<(LineageRef, usize)>>,
    /// Operand → slot position.
    index: FxHashMap<LineageRef, usize>,
    /// Number of live (non-tombstone) slots.
    live: usize,
    /// How many inserted lineages were the constant `true`.
    true_count: usize,
}

impl InternedDisjunction {
    /// Creates an empty disjunction (`∨ ∅ = false`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `lineage` to the multiset. `Or` operands are flattened,
    /// constant `false` contributes nothing and constant `true` forces the
    /// disjunction to `true` until removed.
    pub fn insert(&mut self, lineage: LineageRef, interner: &LineageInterner) {
        match interner.node(lineage) {
            InternedNode::False => {}
            InternedNode::True => self.true_count += 1,
            InternedNode::Or(children) => {
                // Children of a normalized Or are themselves neither Or
                // nor constants, so one level of flattening suffices.
                for &c in children.iter() {
                    self.insert_operand(c);
                }
            }
            _ => self.insert_operand(lineage),
        }
    }

    /// Removes one previously [`insert`](Self::insert)ed occurrence of
    /// `lineage`. Removing a lineage that was never inserted is a logic
    /// error (debug-asserted).
    pub fn remove(&mut self, lineage: LineageRef, interner: &LineageInterner) {
        match interner.node(lineage) {
            InternedNode::False => {}
            InternedNode::True => {
                debug_assert!(self.true_count > 0, "removing ⊤ that was never inserted");
                self.true_count = self.true_count.saturating_sub(1);
            }
            InternedNode::Or(children) => {
                for &c in children.iter() {
                    self.remove_operand(c);
                }
            }
            _ => self.remove_operand(lineage),
        }
    }

    fn insert_operand(&mut self, operand: LineageRef) {
        if let Some(&slot) = self.index.get(&operand) {
            let entry = self.slots[slot].as_mut().expect("indexed slot is live");
            entry.1 += 1;
        } else {
            self.index.insert(operand, self.slots.len());
            self.slots.push(Some((operand, 1)));
            self.live += 1;
        }
    }

    fn remove_operand(&mut self, operand: LineageRef) {
        let Some(&slot) = self.index.get(&operand) else {
            debug_assert!(false, "removing operand that was never inserted");
            return;
        };
        let entry = self.slots[slot].as_mut().expect("indexed slot is live");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.slots[slot] = None;
            self.index.remove(&operand);
            self.live -= 1;
            // Compact when tombstones dominate, re-pointing the index at
            // the surviving slots (amortized O(1) per removal).
            if self.slots.len() > 8 && self.slots.len() >= 2 * self.live.max(1) {
                self.slots.retain(Option::is_some);
                for (pos, s) in self.slots.iter().enumerate() {
                    let (l, _) = s.as_ref().expect("retained slots are live");
                    *self.index.get_mut(l).expect("live operand is indexed") = pos;
                }
            }
        }
    }

    /// Is the disjunction `false` (no live operand, no `true`
    /// contributor)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0 && self.true_count == 0
    }

    /// Number of distinct live operands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// The current disjunction as an interned formula.
    pub fn disjunction(&self, interner: &mut LineageInterner) -> LineageRef {
        if self.true_count > 0 {
            return interner.tru();
        }
        let operands: Vec<LineageRef> = self.slots.iter().flatten().map(|&(l, _)| l).collect();
        interner.or_flattened(operands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Lineage {
        Lineage::var(VarId(i))
    }

    #[test]
    fn constants_are_preinterned() {
        let mut i = LineageInterner::new();
        assert_eq!(i.tru(), i.intern(&Lineage::tru()));
        assert_eq!(i.fls(), i.intern(&Lineage::fls()));
        assert!(i.is_true(i.tru()));
        assert!(i.is_false(i.fls()));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn structurally_equal_formulas_share_one_id() {
        let mut i = LineageInterner::new();
        let f = Lineage::and2(v(1), Lineage::not(Lineage::or2(v(2), v(3))));
        let g = Lineage::and2(v(1), Lineage::not(Lineage::or2(v(2), v(3))));
        assert_eq!(i.intern(&f), i.intern(&g));
        let nodes_after_first = i.len();
        let _ = i.intern(&g);
        assert_eq!(i.len(), nodes_after_first, "re-interning allocates nothing");
    }

    #[test]
    fn constructors_mirror_tree_normalization() {
        let mut i = LineageInterner::new();
        // and: flattening, unit elimination, dedup, absorbing false
        let a = i.intern(&v(1));
        let b = i.intern(&v(2));
        let t = i.tru();
        let f = i.fls();
        assert_eq!(i.and(&[]), t);
        assert_eq!(i.and(&[a]), a);
        assert_eq!(i.and(&[a, t]), a);
        assert_eq!(i.and(&[a, f]), f);
        assert_eq!(i.and(&[a, a]), a);
        let ab = i.and(&[a, b]);
        let c = i.intern(&v(3));
        let flat = i.and(&[ab, c]);
        assert_eq!(
            i.to_lineage(flat),
            Lineage::and(vec![v(1), v(2), v(3)]),
            "nested conjunction flattens one level"
        );
        // or duals
        assert_eq!(i.or(&[]), f);
        assert_eq!(i.or(&[a, f]), a);
        assert_eq!(i.or(&[a, t]), t);
        // not simplifications
        assert_eq!(i.not(t), f);
        assert_eq!(i.not(f), t);
        let na = i.not(a);
        assert_eq!(i.not(na), a);
    }

    #[test]
    fn round_trip_matches_legacy_trees() {
        let mut i = LineageInterner::new();
        let formulas = [
            Lineage::tru(),
            Lineage::fls(),
            v(7),
            Lineage::not(v(1)),
            Lineage::and2(v(0), Lineage::not(Lineage::or2(v(1), v(2)))),
            Lineage::or(vec![v(5), Lineage::and2(v(1), v(2)), Lineage::not(v(3))]),
        ];
        for f in formulas {
            let r = i.intern(&f);
            assert_eq!(i.to_lineage(r), f, "round trip of {f:?}");
        }
    }

    #[test]
    fn to_lineage_shares_arcs_through_the_cache() {
        let mut i = LineageInterner::new();
        let shared = Lineage::or2(v(1), v(2));
        let f = Lineage::and2(v(0), shared.clone());
        let g = Lineage::and2(v(3), shared.clone());
        let rf = i.intern(&f);
        let rg = i.intern(&g);
        let tf = i.to_lineage(rf);
        let tg = i.to_lineage(rg);
        assert_eq!(tf, f);
        assert_eq!(tg, g);
    }

    #[test]
    fn vars_match_legacy_vars() {
        let mut i = LineageInterner::new();
        let f = Lineage::and2(v(9), Lineage::not(Lineage::or2(v(2), v(5))));
        let r = i.intern(&f);
        assert_eq!(i.vars(r), f.vars());
    }

    #[test]
    fn condition_matches_legacy_condition() {
        let mut i = LineageInterner::new();
        let f = Lineage::and2(v(0), Lineage::or2(v(1), v(2)));
        let r = i.intern(&f);
        for (var, value) in [(0, false), (0, true), (1, true), (2, false)] {
            let cond = i.condition(r, VarId(var), value);
            assert_eq!(
                i.to_lineage(cond),
                f.condition(VarId(var), value),
                "condition on x{var}={value}"
            );
        }
    }

    #[test]
    fn interned_disjunction_matches_incremental_disjunction() {
        use crate::IncrementalDisjunction;
        let mut interner = LineageInterner::new();
        let mut interned = InternedDisjunction::new();
        let mut legacy = IncrementalDisjunction::new();
        assert!(interned.is_empty());

        // Same churn pattern as the legacy heavy-churn test.
        for i in 0..64 {
            let l = v(i);
            let r = interner.intern(&l);
            interned.insert(r, &interner);
            legacy.insert(&l);
        }
        for i in 0..63 {
            let l = v(i);
            let r = interner.intern(&l);
            interned.remove(r, &interner);
            legacy.remove(&l);
        }
        for i in 100..104 {
            let l = v(i);
            let r = interner.intern(&l);
            interned.insert(r, &interner);
            legacy.insert(&l);
        }
        assert_eq!(interned.len(), legacy.len());
        let d = interned.disjunction(&mut interner);
        assert_eq!(interner.to_lineage(d), legacy.disjunction());
    }

    #[test]
    fn interned_disjunction_flattens_and_handles_constants() {
        let mut interner = LineageInterner::new();
        let mut d = InternedDisjunction::new();
        let or = interner.intern(&Lineage::or2(v(1), v(2)));
        d.insert(or, &interner);
        let two = interner.intern(&v(2));
        d.insert(two, &interner);
        assert_eq!(d.len(), 2);
        let fls = interner.fls();
        d.insert(fls, &interner);
        assert_eq!(d.len(), 2);
        let tru = interner.tru();
        d.insert(tru, &interner);
        let dis = d.disjunction(&mut interner);
        assert!(interner.is_true(dis));
        d.remove(tru, &interner);
        let dis = d.disjunction(&mut interner);
        assert_eq!(interner.to_lineage(dis), Lineage::or2(v(1), v(2)));
        d.remove(or, &interner);
        let dis = d.disjunction(&mut interner);
        assert_eq!(interner.to_lineage(dis), v(2));
    }
}
