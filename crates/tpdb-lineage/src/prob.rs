//! Exact probability computation for lineage formulas.

use crate::formula::Lineage;
use crate::intern::{FxHashSet, InternedNode, LineageInterner, LineageRef};
use crate::symbols::VarId;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Errors produced by the probability engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbabilityError {
    /// A variable occurring in the formula has no registered probability.
    MissingVariable(VarId),
    /// A probability outside `[0, 1]` was supplied.
    OutOfRange(f64),
}

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbabilityError::MissingVariable(v) => {
                write!(f, "no probability registered for variable {v}")
            }
            ProbabilityError::OutOfRange(p) => {
                write!(f, "probability {p} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ProbabilityError {}

/// Exact probability computation under tuple independence.
///
/// Base tuples of a TP database are independent boolean random variables;
/// the probability of a derived tuple is `Pr(λ)` for its lineage `λ`. The
/// engine computes this exactly:
///
/// 1. structural cases (`true`, `false`, variables, negation),
/// 2. *independent decomposition*: the children of an `And`/`Or` are grouped
///    into connected components over shared variables; distinct components
///    are mutually independent, so their probabilities combine by
///    multiplication (`And`) or inclusion-exclusion on the complement (`Or`),
/// 3. a *Shannon expansion* fallback for components whose children share
///    variables, expanding on the most frequent variable and memoizing
///    intermediate results.
///
/// The lineages produced by TP joins with negation are of the shapes
/// `λr ∧ λs`, `λr`, and `λr ∧ ¬(s₁ ∨ s₂ ∨ …)` over *distinct base tuples*,
/// so in practice the decomposition path answers almost every query without
/// expansion; the Shannon fallback keeps the engine exact for arbitrarily
/// correlated lineages (e.g. after self-joins).
///
/// # Representation
///
/// The engine owns a [`LineageInterner`]: formulas are evaluated in
/// hash-consed form ([`LineageRef`]), and the memo is a dense vector
/// indexed by node id (`NaN` marking absent entries) instead of a map
/// keyed by deep structural hashes of trees. Marginal probabilities live
/// behind an [`Arc`] with copy-on-write semantics, so cloning an engine —
/// as the query layer does once per execution, and the parallel join does
/// once per worker — is cheap and shares the registered probabilities
/// until one side writes.
///
/// Callers on the hot path intern once ([`intern`](Self::intern) or the
/// interned stream constructors) and evaluate with
/// [`probability_ref`](Self::probability_ref); [`probability`](Self::probability)
/// accepts legacy trees and interns on the fly.
#[derive(Debug, Clone, Default)]
pub struct ProbabilityEngine {
    probs: Arc<HashMap<VarId, f64>>,
    interner: LineageInterner,
    /// Dense memo indexed by node id; `NaN` marks an absent entry. Cleared
    /// when a registered probability changes.
    memo: Vec<f64>,
    /// Sticky per-node flag: every variable under this node has a
    /// registered probability. Registration only ever adds or overwrites
    /// variables, so a `true` entry stays valid forever.
    verified: Vec<bool>,
    /// Counts Shannon expansions performed (exposed for the ablation bench).
    expansions: u64,
    /// When true, the decomposition shortcuts are disabled and every
    /// compound formula goes through Shannon expansion. Only used by the
    /// ablation experiment; keeps results identical, only slower.
    force_shannon: bool,
}

impl ProbabilityEngine {
    /// Creates an engine with no registered variables.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) the marginal probability of a variable.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`. Use [`ProbabilityEngine::try_set`]
    /// for a fallible variant.
    pub fn set(&mut self, var: VarId, p: f64) {
        self.try_set(var, p).expect("probability must be in [0, 1]");
    }

    /// Registers the marginal probability of a variable, validating range.
    /// The memo is invalidated only if the value actually changes.
    pub fn try_set(&mut self, var: VarId, p: f64) -> Result<(), ProbabilityError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(ProbabilityError::OutOfRange(p));
        }
        if self.probs.get(&var) == Some(&p) {
            return Ok(());
        }
        Arc::make_mut(&mut self.probs).insert(var, p);
        self.memo.clear();
        Ok(())
    }

    /// Registers a batch of marginal probabilities, clearing the memo at
    /// most **once** (single-variable [`set`](Self::set) pays the memo
    /// invalidation per call, making bulk registration `O(n · memo)`).
    /// Registrations that change nothing — the common case when the query
    /// layer re-registers catalog-known probabilities per execution — leave
    /// both the memo and the shared probability map untouched.
    ///
    /// # Panics
    /// Panics if any probability is not within `[0, 1]`. Use
    /// [`ProbabilityEngine::try_set_all`] for a fallible variant.
    pub fn set_all<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        self.try_set_all(items)
            .expect("probability must be in [0, 1]");
    }

    /// Registers a batch of marginal probabilities, validating ranges and
    /// clearing the memo at most once. On error nothing is modified.
    pub fn try_set_all<I>(&mut self, items: I) -> Result<(), ProbabilityError>
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let mut changed: Vec<(VarId, f64)> = Vec::new();
        for (var, p) in items {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ProbabilityError::OutOfRange(p));
            }
            if self.probs.get(&var) != Some(&p) {
                changed.push((var, p));
            }
        }
        if changed.is_empty() {
            return Ok(());
        }
        let probs = Arc::make_mut(&mut self.probs);
        for (var, p) in changed {
            probs.insert(var, p);
        }
        self.memo.clear();
        Ok(())
    }

    /// The registered probability of a variable.
    #[must_use]
    pub fn get(&self, var: VarId) -> Option<f64> {
        self.probs.get(&var).copied()
    }

    /// Number of registered variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Is the engine empty (no variables registered)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Number of Shannon expansions performed so far.
    #[must_use]
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Disables the independence-decomposition shortcuts (ablation only).
    pub fn set_force_shannon(&mut self, force: bool) {
        self.force_shannon = force;
        self.memo.clear();
    }

    /// The formula arena backing this engine.
    #[must_use]
    pub fn interner(&self) -> &LineageInterner {
        &self.interner
    }

    /// Mutable access to the formula arena (the interned window streams
    /// build their lineages directly in the engine's arena so the refs they
    /// produce can be priced without conversion).
    pub fn interner_mut(&mut self) -> &mut LineageInterner {
        &mut self.interner
    }

    /// Interns a legacy lineage tree into the engine's arena.
    pub fn intern(&mut self, lineage: &Lineage) -> LineageRef {
        self.interner.intern(lineage)
    }

    /// Converts an interned formula back into a legacy tree (cached).
    pub fn to_lineage(&mut self, r: LineageRef) -> Lineage {
        self.interner.to_lineage(r)
    }

    /// Computes `Pr(λ)`.
    ///
    /// # Panics
    /// Panics if a variable of `λ` has no registered probability. Use
    /// [`ProbabilityEngine::try_probability`] for a fallible variant.
    #[must_use]
    pub fn probability(&mut self, lineage: &Lineage) -> f64 {
        self.try_probability(lineage)
            .expect("all lineage variables must have probabilities")
    }

    /// Computes `Pr(λ)`, reporting missing variables as errors.
    pub fn try_probability(&mut self, lineage: &Lineage) -> Result<f64, ProbabilityError> {
        let r = self.interner.intern(lineage);
        self.try_probability_ref(r)
    }

    /// Computes `Pr(λ)` for an interned formula.
    ///
    /// # Panics
    /// Panics if a variable of `λ` has no registered probability. Use
    /// [`ProbabilityEngine::try_probability_ref`] for a fallible variant.
    #[must_use]
    pub fn probability_ref(&mut self, r: LineageRef) -> f64 {
        self.try_probability_ref(r)
            .expect("all lineage variables must have probabilities")
    }

    /// Computes `Pr(λ)` for an interned formula, reporting missing
    /// variables as errors (the *smallest* missing variable is reported,
    /// matching the tree-walk order of the legacy engine).
    pub fn try_probability_ref(&mut self, r: LineageRef) -> Result<f64, ProbabilityError> {
        self.check_vars(r)?;
        Ok(self.prob_rec(r))
    }

    /// Verifies every variable under `r` has a registered probability.
    /// Nodes that pass are marked in the sticky `verified` table, so
    /// re-pricing formulas over already-checked sub-DAGs is `O(1)`.
    fn check_vars(&mut self, root: LineageRef) -> Result<(), ProbabilityError> {
        if self.verified.len() < self.interner.len() {
            self.verified.resize(self.interner.len(), false);
        }
        if self.verified[root.index()] {
            return Ok(());
        }
        let mut stack = vec![root];
        let mut walked: Vec<usize> = Vec::new();
        let mut in_walk: FxHashSet<usize> = FxHashSet::default();
        let mut missing: Option<VarId> = None;
        while let Some(cur) = stack.pop() {
            let i = cur.index();
            if self.verified[i] || !in_walk.insert(i) {
                continue;
            }
            walked.push(i);
            match self.interner.node(cur) {
                InternedNode::True | InternedNode::False => {}
                InternedNode::Var(v) => {
                    if !self.probs.contains_key(v) {
                        missing = Some(match missing {
                            Some(m) if m < *v => m,
                            _ => *v,
                        });
                    }
                }
                InternedNode::Not(c) => stack.push(*c),
                InternedNode::And(cs) | InternedNode::Or(cs) => stack.extend(cs.iter().copied()),
            }
        }
        if let Some(v) = missing {
            return Err(ProbabilityError::MissingVariable(v));
        }
        for i in walked {
            self.verified[i] = true;
        }
        Ok(())
    }

    /// Checks the engine's arena and memo invariants, returning a
    /// description of the first violation (`Ok(())` when healthy):
    /// the owned interner passes [`LineageInterner::verify_arena`], the
    /// id-keyed side tables never outgrow the arena, every present memo
    /// entry is a probability in `[0, 1]`, and the two constants — when
    /// memoized — carry their exact probabilities.
    ///
    /// `O(arena size)`; intended for debug builds and property tests.
    // The constants are seeded with exactly 1.0/0.0, so the sentinel check
    // is a legitimate exact comparison.
    #[allow(clippy::float_cmp)]
    // A diagnostic self-check like the interner's: the String payload is an
    // assertion message, not an error callers match on.
    // tpdb-lint: allow(error-taxonomy)
    pub fn verify_arena(&self) -> Result<(), String> {
        self.interner.verify_arena()?;
        if self.memo.len() > self.interner.len() {
            return Err(format!(
                "memo has {} entries for {} arena nodes",
                self.memo.len(),
                self.interner.len()
            ));
        }
        if self.verified.len() > self.interner.len() {
            return Err(format!(
                "verified table has {} entries for {} arena nodes",
                self.verified.len(),
                self.interner.len()
            ));
        }
        for (i, &p) in self.memo.iter().enumerate() {
            if p.is_nan() {
                continue; // NaN is the absent-entry sentinel
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("memo[{i}] = {p} is outside [0, 1]"));
            }
            if (i == 0 && p != 1.0) || (i == 1 && p != 0.0) {
                return Err(format!("constant node {i} memoized with probability {p}"));
            }
        }
        Ok(())
    }

    fn memo_get(&self, r: LineageRef) -> Option<f64> {
        self.memo.get(r.index()).copied().filter(|p| !p.is_nan())
    }

    fn memo_insert(&mut self, r: LineageRef, p: f64) {
        let i = r.index();
        if self.memo.len() <= i {
            self.memo.resize(self.interner.len().max(i + 1), f64::NAN);
        }
        self.memo[i] = p;
    }

    fn prob_rec(&mut self, r: LineageRef) -> f64 {
        match self.interner.node(r) {
            InternedNode::True => return 1.0,
            InternedNode::False => return 0.0,
            InternedNode::Var(v) => return self.probs[v],
            InternedNode::Not(c) => {
                let c = *c;
                return 1.0 - self.prob_rec(c);
            }
            _ => {}
        }
        if let Some(p) = self.memo_get(r) {
            return p;
        }
        let p = if self.force_shannon {
            self.shannon(r)
        } else {
            match self.interner.node(r) {
                InternedNode::And(cs) => {
                    let children: Vec<LineageRef> = cs.to_vec();
                    self.prob_nary(&children, true)
                }
                InternedNode::Or(cs) => {
                    let children: Vec<LineageRef> = cs.to_vec();
                    self.prob_nary(&children, false)
                }
                _ => unreachable!("handled above"),
            }
        };
        self.memo_insert(r, p);
        p
    }

    /// Probability of an n-ary conjunction (`is_and`) or disjunction.
    fn prob_nary(&mut self, children: &[LineageRef], is_and: bool) -> f64 {
        // Group children into connected components over shared variables.
        let groups = connected_components(&self.interner, children);
        let mut acc = 1.0;
        for group in groups {
            let p_group = if group.len() == 1 {
                self.prob_rec(children[group[0]])
            } else {
                // children in this group share variables: expand the joint
                // sub-formula with Shannon.
                let subs: Vec<LineageRef> = group.iter().map(|&i| children[i]).collect();
                let joint = if is_and {
                    self.interner.and(&subs)
                } else {
                    self.interner.or(&subs)
                };
                self.shannon(joint)
            };
            if is_and {
                acc *= p_group;
            } else {
                acc *= 1.0 - p_group;
            }
        }
        if is_and {
            acc
        } else {
            1.0 - acc
        }
    }

    /// Shannon expansion on the most frequent variable.
    fn shannon(&mut self, r: LineageRef) -> f64 {
        match self.interner.node(r) {
            InternedNode::True => return 1.0,
            InternedNode::False => return 0.0,
            InternedNode::Var(v) => return self.probs[v],
            InternedNode::Not(c) => {
                let c = *c;
                return 1.0 - self.shannon(c);
            }
            _ => {}
        }
        if let Some(p) = self.memo_get(r) {
            return p;
        }
        let var =
            most_frequent_var(&self.interner, r).expect("compound formula must mention a variable");
        self.expansions += 1;
        let p_var = self.probs[&var];
        let pos = self.interner.condition(r, var, true);
        let neg = self.interner.condition(r, var, false);
        let p =
            p_var * self.shannon_or_decompose(pos) + (1.0 - p_var) * self.shannon_or_decompose(neg);
        self.memo_insert(r, p);
        p
    }

    /// After conditioning, the cofactor frequently becomes decomposable
    /// again; route it through the main recursion unless the ablation flag
    /// forces pure Shannon.
    fn shannon_or_decompose(&mut self, r: LineageRef) -> f64 {
        if self.force_shannon {
            self.shannon(r)
        } else {
            self.prob_rec(r)
        }
    }

    /// Exact probability by enumerating all assignments of the formula's
    /// variables. Exponential; intended only for tests and documentation.
    pub fn probability_by_enumeration(&self, lineage: &Lineage) -> Result<f64, ProbabilityError> {
        let vars: Vec<VarId> = lineage.vars().into_iter().collect();
        for v in &vars {
            if !self.probs.contains_key(v) {
                return Err(ProbabilityError::MissingVariable(*v));
            }
        }
        assert!(
            vars.len() <= 24,
            "enumeration is only meant for small formulas"
        );
        let mut total = 0.0;
        for mask in 0u64..(1u64 << vars.len()) {
            let assignment = |v: VarId| {
                vars.iter()
                    .position(|x| *x == v)
                    .map(|i| mask & (1 << i) != 0)
                    .unwrap_or(false)
            };
            if lineage.evaluate(assignment) {
                let mut w = 1.0;
                for (i, v) in vars.iter().enumerate() {
                    let p = self.probs[v];
                    w *= if mask & (1 << i) != 0 { p } else { 1.0 - p };
                }
                total += w;
            }
        }
        Ok(total)
    }

    #[cfg(test)]
    fn memo_entries(&self) -> usize {
        self.memo.iter().filter(|p| !p.is_nan()).count()
    }
}

/// Groups formula indices into connected components over shared variables.
fn connected_components(interner: &LineageInterner, children: &[LineageRef]) -> Vec<Vec<usize>> {
    let var_sets: Vec<BTreeSet<VarId>> = children.iter().map(|&c| interner.vars(c)).collect();
    let n = children.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }

    // Union children that share at least one variable. We link via a map
    // from variable to the first child using it, so the cost is
    // O(total vars · α(n)) instead of O(n²) pairwise comparisons.
    let mut owner: HashMap<VarId, usize> = HashMap::new();
    for (i, vs) in var_sets.iter().enumerate() {
        for v in vs {
            match owner.get(v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(*v, i);
                }
            }
        }
    }

    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// The variable occurring in the largest number of sub-formulas (a standard
/// branching heuristic for Shannon expansion). Occurrences are counted with
/// multiplicity — each appearance in the formula counts, exactly as the
/// legacy tree walk did.
fn most_frequent_var(interner: &LineageInterner, r: LineageRef) -> Option<VarId> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    fn walk(interner: &LineageInterner, r: LineageRef, counts: &mut HashMap<VarId, usize>) {
        match interner.node(r) {
            InternedNode::Var(v) => *counts.entry(*v).or_insert(0) += 1,
            InternedNode::Not(c) => walk(interner, *c, counts),
            InternedNode::And(cs) | InternedNode::Or(cs) => {
                for &c in cs.iter() {
                    walk(interner, c, counts);
                }
            }
            _ => {}
        }
    }
    walk(interner, r, &mut counts);
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

#[cfg(test)]
// Tests assert bit-exact values on purpose (reproducibility contract).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: u32) -> Lineage {
        Lineage::var(VarId(i))
    }

    fn engine(ps: &[f64]) -> ProbabilityEngine {
        let mut e = ProbabilityEngine::new();
        for (i, &p) in ps.iter().enumerate() {
            e.set(VarId(i as u32), p);
        }
        e
    }

    #[test]
    fn constants_and_vars() {
        let mut e = engine(&[0.3]);
        assert_eq!(e.probability(&Lineage::tru()), 1.0);
        assert_eq!(e.probability(&Lineage::fls()), 0.0);
        assert!((e.probability(&v(0)) - 0.3).abs() < 1e-12);
        assert!((e.probability(&Lineage::not(v(0))) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn independent_and_or() {
        let mut e = engine(&[0.5, 0.4]);
        let and = Lineage::and2(v(0), v(1));
        let or = Lineage::or2(v(0), v(1));
        assert!((e.probability(&and) - 0.2).abs() < 1e-12);
        assert!((e.probability(&or) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn paper_running_example_probabilities() {
        // a1 = 0.7, b2 = 0.6, b3 = 0.7 (Fig. 1a)
        let mut syms = crate::SymbolTable::new();
        let a1 = syms.intern("a1");
        let b2 = syms.intern("b2");
        let b3 = syms.intern("b3");
        let mut e = ProbabilityEngine::new();
        e.set(a1, 0.7);
        e.set(b2, 0.6);
        e.set(b3, 0.7);

        // ('Ann, ZAK, hotel1', a1 ∧ b3) = 0.49
        let t1 = Lineage::and_concat(&Lineage::var(a1), &Lineage::var(b3));
        assert!((e.probability(&t1) - 0.49).abs() < 1e-12);
        // ('Ann, ZAK, hotel2', a1 ∧ b2) = 0.42
        let t2 = Lineage::and_concat(&Lineage::var(a1), &Lineage::var(b2));
        assert!((e.probability(&t2) - 0.42).abs() < 1e-12);
        // (a1 ∧ ¬b3) = 0.7 * 0.3 = 0.21
        let t3 = Lineage::and_not_concat(&Lineage::var(a1), &Lineage::var(b3));
        assert!((e.probability(&t3) - 0.21).abs() < 1e-12);
        // (a1 ∧ ¬(b3 ∨ b2)) = 0.7 * 0.3 * 0.4 = 0.084
        let t4 = Lineage::and_not_concat(
            &Lineage::var(a1),
            &Lineage::or(vec![Lineage::var(b3), Lineage::var(b2)]),
        );
        assert!((e.probability(&t4) - 0.084).abs() < 1e-12);
        // (a1 ∧ ¬b2) = 0.7 * 0.4 = 0.28
        let t5 = Lineage::and_not_concat(&Lineage::var(a1), &Lineage::var(b2));
        assert!((e.probability(&t5) - 0.28).abs() < 1e-12);
    }

    #[test]
    fn correlated_formula_requires_expansion() {
        // (x0 ∧ x1) ∨ (x0 ∧ x2): components share x0.
        let mut e = engine(&[0.5, 0.5, 0.5]);
        let f = Lineage::or2(Lineage::and2(v(0), v(1)), Lineage::and2(v(0), v(2)));
        let p = e.probability(&f);
        // exact: P(x0) * P(x1 ∨ x2) = 0.5 * 0.75 = 0.375
        assert!((p - 0.375).abs() < 1e-12);
        assert!(
            e.expansions() > 0,
            "shared-variable formula must trigger expansion"
        );
    }

    #[test]
    fn decomposition_avoids_expansion_for_disjoint_children() {
        let mut e = engine(&[0.5, 0.5, 0.5, 0.5]);
        let f = Lineage::or2(Lineage::and2(v(0), v(1)), Lineage::and2(v(2), v(3)));
        let p = e.probability(&f);
        assert!((p - (1.0 - 0.75 * 0.75)).abs() < 1e-12);
        assert_eq!(e.expansions(), 0);
    }

    #[test]
    fn missing_variable_is_reported() {
        let mut e = engine(&[0.5]);
        let err = e.try_probability(&Lineage::and2(v(0), v(7))).unwrap_err();
        assert_eq!(err, ProbabilityError::MissingVariable(VarId(7)));
    }

    #[test]
    fn smallest_missing_variable_is_reported() {
        let mut e = engine(&[0.5]);
        let f = Lineage::and(vec![v(0), v(9), v(3), v(6)]);
        let err = e.try_probability(&f).unwrap_err();
        assert_eq!(err, ProbabilityError::MissingVariable(VarId(3)));
    }

    #[test]
    fn out_of_range_probability_is_rejected() {
        let mut e = ProbabilityEngine::new();
        assert!(e.try_set(VarId(0), 1.5).is_err());
        assert!(e.try_set(VarId(0), -0.1).is_err());
        assert!(e.try_set(VarId(0), f64::NAN).is_err());
        assert!(e.try_set(VarId(0), 1.0).is_ok());
    }

    #[test]
    fn force_shannon_gives_identical_results() {
        let f = Lineage::or(vec![
            Lineage::and2(v(0), v(1)),
            Lineage::and2(v(2), Lineage::not(v(3))),
            Lineage::and2(v(0), v(4)),
        ]);
        let mut fast = engine(&[0.3, 0.6, 0.2, 0.8, 0.5]);
        let mut slow = engine(&[0.3, 0.6, 0.2, 0.8, 0.5]);
        slow.set_force_shannon(true);
        assert!((fast.probability(&f) - slow.probability(&f)).abs() < 1e-12);
    }

    #[test]
    fn enumeration_reference_small_formula() {
        let f = Lineage::and_not_concat(&v(0), &Lineage::or2(v(1), v(2)));
        let e = engine(&[0.7, 0.6, 0.7]);
        let p = e.probability_by_enumeration(&f).unwrap();
        assert!((p - 0.7 * 0.4 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn memo_is_invalidated_when_probabilities_change() {
        let mut e = engine(&[0.5, 0.5]);
        let f = Lineage::and2(v(0), v(1));
        assert!((e.probability(&f) - 0.25).abs() < 1e-12);
        e.set(VarId(0), 1.0);
        assert!((e.probability(&f) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unchanged_registration_preserves_the_memo() {
        let mut e = engine(&[0.5, 0.5]);
        let f = Lineage::and2(v(0), v(1));
        assert!((e.probability(&f) - 0.25).abs() < 1e-12);
        assert!(e.memo_entries() > 0);
        // re-registering identical values must keep memoized results
        e.set(VarId(0), 0.5);
        e.set_all([(VarId(0), 0.5), (VarId(1), 0.5)]);
        assert!(e.memo_entries() > 0);
        // a real change through either path invalidates
        e.set_all([(VarId(0), 1.0), (VarId(1), 0.5)]);
        assert_eq!(e.memo_entries(), 0);
        assert!((e.probability(&f) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_all_validates_before_mutating() {
        let mut e = engine(&[0.5]);
        let err = e
            .try_set_all([(VarId(1), 0.4), (VarId(2), 1.5)])
            .unwrap_err();
        assert_eq!(err, ProbabilityError::OutOfRange(1.5));
        assert_eq!(e.get(VarId(1)), None, "failed batch must not apply");
        assert_eq!(e.get(VarId(0)), Some(0.5));
    }

    #[test]
    fn probability_ref_matches_tree_probability() {
        let f = Lineage::or(vec![
            Lineage::and2(v(0), v(1)),
            Lineage::and2(v(0), Lineage::not(v(2))),
            v(3),
        ]);
        let mut by_tree = engine(&[0.3, 0.6, 0.2, 0.8]);
        let mut by_ref = engine(&[0.3, 0.6, 0.2, 0.8]);
        let r = by_ref.intern(&f);
        assert_eq!(by_tree.probability(&f), by_ref.probability_ref(r));
        assert_eq!(by_ref.to_lineage(r), f);
    }

    #[test]
    fn cloned_engines_share_probabilities_until_write() {
        let mut base = engine(&[0.5, 0.4]);
        let mut fork = base.clone();
        fork.set(VarId(0), 0.9);
        assert_eq!(base.get(VarId(0)), Some(0.5), "clone must copy on write");
        assert_eq!(fork.get(VarId(0)), Some(0.9));
        assert!((base.probability(&Lineage::and2(v(0), v(1))) - 0.2).abs() < 1e-12);
    }

    fn arb_lineage() -> impl Strategy<Value = Lineage> {
        let leaf = (0u32..5).prop_map(|i| Lineage::var(VarId(i)));
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(Lineage::not),
                proptest::collection::vec(inner.clone(), 2..4).prop_map(Lineage::and),
                proptest::collection::vec(inner, 2..4).prop_map(Lineage::or),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_probability_matches_enumeration(f in arb_lineage(), ps in proptest::collection::vec(0.0f64..=1.0, 5)) {
            let mut e = ProbabilityEngine::new();
            for (i, &p) in ps.iter().enumerate() {
                e.set(VarId(i as u32), p);
            }
            let exact = e.probability_by_enumeration(&f).unwrap();
            let computed = e.probability(&f);
            prop_assert!((exact - computed).abs() < 1e-9, "exact {exact} vs computed {computed} for {f:?}");
        }

        #[test]
        fn prop_probability_is_within_bounds(f in arb_lineage(), ps in proptest::collection::vec(0.0f64..=1.0, 5)) {
            let mut e = ProbabilityEngine::new();
            for (i, &p) in ps.iter().enumerate() {
                e.set(VarId(i as u32), p);
            }
            let p = e.probability(&f);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p));
        }

        #[test]
        fn prop_complement_rule(f in arb_lineage(), ps in proptest::collection::vec(0.0f64..=1.0, 5)) {
            let mut e = ProbabilityEngine::new();
            for (i, &p) in ps.iter().enumerate() {
                e.set(VarId(i as u32), p);
            }
            let p = e.probability(&f);
            let not_p = e.probability(&Lineage::not(f));
            prop_assert!((p + not_p - 1.0).abs() < 1e-9);
        }
    }
}
