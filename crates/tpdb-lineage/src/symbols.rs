//! Base-tuple variable identifiers and the symbol table.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a base-tuple boolean random variable.
///
/// Every base tuple of a TP relation is associated with exactly one variable
/// (its atomic lineage, e.g. `a1` or `b3` in the paper's running example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// The raw numeric id.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A bidirectional mapping between human-readable base-tuple names and
/// [`VarId`]s.
///
/// The storage layer interns one symbol per base tuple (typically
/// `"<relation><ordinal>"`, e.g. `a1`, `b3`); lineage formulas store only the
/// compact [`VarId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, creating a fresh one on first use.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("too many lineage variables"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Allocates a fresh anonymous variable with a generated name.
    pub fn fresh(&mut self, prefix: &str) -> VarId {
        let name = format!("{prefix}{}", self.names.len());
        self.intern(&name)
    }

    /// Looks up the id of an existing name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable, if it was interned through this table.
    #[must_use]
    pub fn name(&self, id: VarId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the table empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }

    /// Rebuilds a table from an id-ordered name list (the inverse of
    /// [`SymbolTable::iter`]): position `i` becomes `VarId(i)`. Used by the
    /// storage layer's snapshot import. Fails if the list contains a
    /// duplicate or exceeds the `u32` id space, since such a dictionary
    /// cannot have been produced by [`SymbolTable::intern`].
    pub fn from_names(names: Vec<String>) -> Result<Self, SymbolTableError> {
        if u32::try_from(names.len()).is_err() {
            return Err(SymbolTableError::IdSpaceExhausted);
        }
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            if by_name.insert(name.clone(), VarId(i as u32)).is_some() {
                return Err(SymbolTableError::DuplicateName(name.clone()));
            }
        }
        Ok(Self { names, by_name })
    }
}

/// Errors rebuilding a [`SymbolTable`] from an external name list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolTableError {
    /// The same name appeared under two ids.
    DuplicateName(String),
    /// The list is larger than the `u32` variable-id space.
    IdSpaceExhausted,
}

impl fmt::Display for SymbolTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolTableError::DuplicateName(name) => {
                write!(f, "duplicate symbol name `{name}`")
            }
            SymbolTableError::IdSpaceExhausted => {
                write!(f, "symbol list exceeds the u32 variable-id space")
            }
        }
    }
}

impl std::error::Error for SymbolTableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a1");
        let b = t.intern("b1");
        assert_ne!(a, b);
        assert_eq!(t.intern("a1"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut t = SymbolTable::new();
        let a = t.intern("a1");
        assert_eq!(t.lookup("a1"), Some(a));
        assert_eq!(t.lookup("zzz"), None);
        assert_eq!(t.name(a), Some("a1"));
        assert_eq!(t.name(VarId(99)), None);
    }

    #[test]
    fn fresh_generates_unique_names() {
        let mut t = SymbolTable::new();
        let v1 = t.fresh("t");
        let v2 = t.fresh("t");
        assert_ne!(v1, v2);
        assert_ne!(t.name(v1), t.name(v2));
    }

    #[test]
    fn iteration_is_in_id_order() {
        let mut t = SymbolTable::new();
        t.intern("b");
        t.intern("a");
        let collected: Vec<_> = t.iter().map(|(id, n)| (id.index(), n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "b".to_owned()), (1, "a".to_owned())]);
    }

    #[test]
    fn display_of_var_id() {
        assert_eq!(VarId(7).to_string(), "x7");
    }

    #[test]
    fn from_names_inverts_iter() {
        let mut t = SymbolTable::new();
        t.intern("a1");
        t.intern("b1");
        let names: Vec<String> = t.iter().map(|(_, n)| n.to_owned()).collect();
        let rebuilt = SymbolTable::from_names(names).unwrap();
        assert_eq!(rebuilt.lookup("a1"), Some(VarId(0)));
        assert_eq!(rebuilt.lookup("b1"), Some(VarId(1)));
        assert_eq!(rebuilt.len(), 2);
    }

    #[test]
    fn from_names_rejects_duplicates() {
        let err = SymbolTable::from_names(vec!["a".into(), "a".into()]).unwrap_err();
        assert_eq!(err, SymbolTableError::DuplicateName("a".into()));
    }
}
