//! Incremental maintenance of a disjunction over a changing multiset.
//!
//! The LAWAN sweep emits one negating window per elementary interval, each
//! carrying `λs = ∨ {lineages of the currently active s tuples}`. Building
//! that disjunction from scratch at every boundary — flattening, constant
//! elimination and hash-based deduplication over the full active set — is
//! what made the sweep quadratic in the active-set size. An
//! [`IncrementalDisjunction`] maintains the flattened, deduplicated operand
//! list *across* boundaries instead: activating or expiring a lineage costs
//! time proportional to that lineage's own operand count, and emitting the
//! current disjunction only clones the live operands into a fresh `Or` node
//! (no re-flattening, no re-hashing).
//!
//! Operands are kept in first-activation order with reference counts, so a
//! lineage contributed by several active tuples (shared sub-lineages are
//! common after self-joins) is stored once and survives until its last
//! contributor expires.

use crate::formula::{Lineage, LineageNode};
use std::collections::HashMap;

/// A multiset of lineages with an incrementally maintained disjunction.
#[derive(Debug, Clone, Default)]
pub struct IncrementalDisjunction {
    /// Distinct non-constant operands in first-insertion order, with their
    /// reference counts. `None` marks a slot whose operand expired
    /// (compacted away periodically).
    slots: Vec<Option<(Lineage, usize)>>,
    /// Operand → slot position.
    index: HashMap<Lineage, usize>,
    /// Number of live (non-tombstone) slots.
    live: usize,
    /// How many inserted lineages were the constant `true` (each makes the
    /// whole disjunction `true`).
    true_count: usize,
}

impl IncrementalDisjunction {
    /// Creates an empty disjunction (`∨ ∅ = false`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `lineage` to the multiset. `Or` operands are flattened, constant
    /// `false` contributes nothing and constant `true` forces the
    /// disjunction to `true` until removed.
    pub fn insert(&mut self, lineage: &Lineage) {
        match lineage.node() {
            LineageNode::False => {}
            LineageNode::True => self.true_count += 1,
            LineageNode::Or(children) => {
                for c in children {
                    self.insert(c);
                }
            }
            _ => self.insert_operand(lineage),
        }
    }

    /// Removes one previously [`insert`](Self::insert)ed occurrence of
    /// `lineage`. Removing a lineage that was never inserted is a logic
    /// error (debug-asserted).
    pub fn remove(&mut self, lineage: &Lineage) {
        match lineage.node() {
            LineageNode::False => {}
            LineageNode::True => {
                debug_assert!(self.true_count > 0, "removing ⊤ that was never inserted");
                self.true_count = self.true_count.saturating_sub(1);
            }
            LineageNode::Or(children) => {
                for c in children {
                    self.remove(c);
                }
            }
            _ => self.remove_operand(lineage),
        }
    }

    fn insert_operand(&mut self, operand: &Lineage) {
        if let Some(&slot) = self.index.get(operand) {
            let entry = self.slots[slot].as_mut().expect("indexed slot is live");
            entry.1 += 1;
        } else {
            self.index.insert(operand.clone(), self.slots.len());
            self.slots.push(Some((operand.clone(), 1)));
            self.live += 1;
        }
    }

    fn remove_operand(&mut self, operand: &Lineage) {
        let Some(&slot) = self.index.get(operand) else {
            debug_assert!(false, "removing operand that was never inserted");
            return;
        };
        let entry = self.slots[slot].as_mut().expect("indexed slot is live");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.slots[slot] = None;
            self.index.remove(operand);
            self.live -= 1;
            // Compact when tombstones dominate, re-pointing the index at the
            // surviving slots (amortized O(1) per removal).
            if self.slots.len() > 8 && self.slots.len() >= 2 * self.live.max(1) {
                self.slots.retain(Option::is_some);
                for (pos, s) in self.slots.iter().enumerate() {
                    let (l, _) = s.as_ref().expect("retained slots are live");
                    *self.index.get_mut(l).expect("live operand is indexed") = pos;
                }
            }
        }
    }

    /// Is the disjunction `false` (no live operand, no `true` contributor)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0 && self.true_count == 0
    }

    /// Number of distinct live operands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// The current disjunction as a [`Lineage`].
    #[must_use]
    pub fn disjunction(&self) -> Lineage {
        if self.true_count > 0 {
            return Lineage::tru();
        }
        let operands: Vec<Lineage> = self
            .slots
            .iter()
            .flatten()
            .map(|(l, _)| l.clone())
            .collect();
        Lineage::or_flattened(operands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::VarId;

    fn v(i: u32) -> Lineage {
        Lineage::var(VarId(i))
    }

    #[test]
    fn empty_is_false() {
        let d = IncrementalDisjunction::new();
        assert!(d.is_empty());
        assert!(d.disjunction().is_false());
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut d = IncrementalDisjunction::new();
        d.insert(&v(1));
        d.insert(&v(2));
        assert_eq!(d.disjunction(), Lineage::or(vec![v(1), v(2)]));
        d.remove(&v(1));
        assert_eq!(d.disjunction(), v(2));
        d.remove(&v(2));
        assert!(d.disjunction().is_false());
    }

    #[test]
    fn duplicates_are_reference_counted() {
        let mut d = IncrementalDisjunction::new();
        d.insert(&v(7));
        d.insert(&v(7));
        assert_eq!(d.len(), 1);
        assert_eq!(d.disjunction(), v(7));
        d.remove(&v(7));
        assert_eq!(d.disjunction(), v(7), "one contributor still active");
        d.remove(&v(7));
        assert!(d.disjunction().is_false());
    }

    #[test]
    fn or_operands_are_flattened() {
        let mut d = IncrementalDisjunction::new();
        let or = Lineage::or(vec![v(1), v(2)]);
        d.insert(&or);
        d.insert(&v(2));
        assert_eq!(d.len(), 2);
        assert_eq!(d.disjunction(), Lineage::or(vec![v(1), v(2)]));
        d.remove(&or);
        assert_eq!(d.disjunction(), v(2));
    }

    #[test]
    fn constants_behave_like_or() {
        let mut d = IncrementalDisjunction::new();
        d.insert(&Lineage::fls());
        assert!(d.is_empty());
        d.insert(&v(3));
        d.insert(&Lineage::tru());
        assert!(d.disjunction().is_true());
        d.remove(&Lineage::tru());
        assert_eq!(d.disjunction(), v(3));
    }

    #[test]
    fn heavy_churn_with_compaction_matches_rebuild() {
        let mut d = IncrementalDisjunction::new();
        // Activate 64 vars, expire the first 63, then compare against a
        // from-scratch Lineage::or of the survivors plus newcomers.
        for i in 0..64 {
            d.insert(&v(i));
        }
        for i in 0..63 {
            d.remove(&v(i));
        }
        for i in 100..104 {
            d.insert(&v(i));
        }
        let expected = Lineage::or(vec![v(63), v(100), v(101), v(102), v(103)]);
        assert_eq!(d.disjunction(), expected);
        assert_eq!(d.len(), 5);
    }
}
