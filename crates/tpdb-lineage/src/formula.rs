//! Lineage formula representation.

use crate::symbols::{SymbolTable, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A node of a lineage formula.
///
/// `And`/`Or` are n-ary (flattened) to keep the formulas produced by window
/// grouping shallow: the negating window `a1 ∧ ¬(b3 ∨ b2 ∨ b7)` is two levels
/// deep no matter how many negative tuples participate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineageNode {
    /// The formula that is true in every possible world.
    True,
    /// The formula that is false in every possible world.
    False,
    /// A base-tuple variable.
    Var(VarId),
    /// Negation of a sub-formula.
    Not(Lineage),
    /// Conjunction of at least two sub-formulas.
    And(Vec<Lineage>),
    /// Disjunction of at least two sub-formulas.
    Or(Vec<Lineage>),
}

/// Order-preserving duplicate elimination used when flattening `And`/`Or`
/// operand lists. Windows over wide groups (e.g. the Meteo workload) build
/// disjunctions with hundreds of operands, so membership checks go through a
/// hash set instead of a linear scan.
struct Deduper {
    ordered: Vec<Lineage>,
    seen: std::collections::HashSet<Lineage>,
}

impl Deduper {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            ordered: Vec::with_capacity(capacity),
            seen: std::collections::HashSet::with_capacity(capacity),
        }
    }

    fn push(&mut self, lineage: Lineage) {
        if self.seen.insert(lineage.clone()) {
            self.ordered.push(lineage);
        }
    }

    fn into_vec(self) -> Vec<Lineage> {
        self.ordered
    }
}

/// An immutable, cheaply clonable lineage formula.
///
/// Lineages are shared via [`Arc`]; cloning a lineage or embedding it in a
/// larger formula never copies the underlying tree. This is what allows the
/// window algorithms to keep per-relation lineages "decoupled until the
/// formation of output tuples" without any materialization cost.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lineage(Arc<LineageNode>);

impl Lineage {
    // ----- constructors -------------------------------------------------

    /// The constant-true lineage.
    #[must_use]
    pub fn tru() -> Self {
        Lineage(Arc::new(LineageNode::True))
    }

    /// The constant-false lineage.
    #[must_use]
    pub fn fls() -> Self {
        Lineage(Arc::new(LineageNode::False))
    }

    /// An atomic lineage: a single base-tuple variable.
    #[must_use]
    pub fn var(v: VarId) -> Self {
        Lineage(Arc::new(LineageNode::Var(v)))
    }

    /// Negation with structural simplification:
    /// `¬true = false`, `¬false = true`, `¬¬φ = φ`.
    // An associated constructor like `and`/`or`, not a `!` overload: it
    // consumes its operand and simplifies structurally.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(operand: Lineage) -> Self {
        match operand.node() {
            LineageNode::True => Self::fls(),
            LineageNode::False => Self::tru(),
            LineageNode::Not(inner) => inner.clone(),
            _ => Lineage(Arc::new(LineageNode::Not(operand))),
        }
    }

    /// N-ary conjunction with flattening, unit elimination and
    /// deduplication. `and([])` is `true`; a conjunction containing `false`
    /// collapses to `false`.
    #[must_use]
    pub fn and(operands: Vec<Lineage>) -> Self {
        let mut flat = Deduper::with_capacity(operands.len());
        for op in operands {
            match op.node() {
                LineageNode::True => {}
                LineageNode::False => return Self::fls(),
                LineageNode::And(children) => {
                    for c in children {
                        flat.push(c.clone());
                    }
                }
                _ => flat.push(op),
            }
        }
        let mut flat = flat.into_vec();
        match flat.len() {
            0 => Self::tru(),
            1 => flat.pop().expect("len checked"),
            _ => Lineage(Arc::new(LineageNode::And(flat))),
        }
    }

    /// N-ary disjunction with flattening, unit elimination and
    /// deduplication. `or([])` is `false`; a disjunction containing `true`
    /// collapses to `true`.
    #[must_use]
    pub fn or(operands: Vec<Lineage>) -> Self {
        let mut flat = Deduper::with_capacity(operands.len());
        for op in operands {
            match op.node() {
                LineageNode::False => {}
                LineageNode::True => return Self::tru(),
                LineageNode::Or(children) => {
                    for c in children {
                        flat.push(c.clone());
                    }
                }
                _ => flat.push(op),
            }
        }
        let mut flat = flat.into_vec();
        match flat.len() {
            0 => Self::fls(),
            1 => flat.pop().expect("len checked"),
            _ => Lineage(Arc::new(LineageNode::Or(flat))),
        }
    }

    /// Builds a disjunction from operands that are already flattened (no
    /// nested `Or`, no constants) and deduplicated, skipping the
    /// flattening/deduplication pass of [`Lineage::or`]. This is the emission
    /// path of [`crate::IncrementalDisjunction`], which maintains such an
    /// operand list across sweep boundaries.
    #[must_use]
    pub fn or_flattened(mut operands: Vec<Lineage>) -> Self {
        debug_assert!(
            operands.iter().all(|o| !matches!(
                o.node(),
                LineageNode::Or(_) | LineageNode::True | LineageNode::False
            )),
            "or_flattened operands must be flattened and constant-free"
        );
        match operands.len() {
            0 => Self::fls(),
            1 => operands.pop().expect("len checked"),
            _ => Lineage(Arc::new(LineageNode::Or(operands))),
        }
    }

    /// Binary conjunction convenience wrapper.
    #[must_use]
    pub fn and2(a: Lineage, b: Lineage) -> Self {
        Self::and(vec![a, b])
    }

    /// Binary disjunction convenience wrapper.
    #[must_use]
    pub fn or2(a: Lineage, b: Lineage) -> Self {
        Self::or(vec![a, b])
    }

    // ----- the paper's lineage concatenation functions -------------------

    /// The `and` concatenation function used for overlapping windows:
    /// `λr ∧ λs`.
    #[must_use]
    pub fn and_concat(lambda_r: &Lineage, lambda_s: &Lineage) -> Self {
        Self::and2(lambda_r.clone(), lambda_s.clone())
    }

    /// The `andNot` concatenation function used for negating windows:
    /// `λr ∧ ¬λs`.
    #[must_use]
    pub fn and_not_concat(lambda_r: &Lineage, lambda_s: &Lineage) -> Self {
        Self::and2(lambda_r.clone(), Self::not(lambda_s.clone()))
    }

    // ----- inspection ----------------------------------------------------

    /// The root node of the formula.
    #[must_use]
    pub fn node(&self) -> &LineageNode {
        &self.0
    }

    /// Is this the constant-true formula?
    #[must_use]
    pub fn is_true(&self) -> bool {
        matches!(self.node(), LineageNode::True)
    }

    /// Is this the constant-false formula?
    #[must_use]
    pub fn is_false(&self) -> bool {
        matches!(self.node(), LineageNode::False)
    }

    /// The set of variables mentioned anywhere in the formula.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self.node() {
            LineageNode::True | LineageNode::False => {}
            LineageNode::Var(v) => {
                out.insert(*v);
            }
            LineageNode::Not(c) => c.collect_vars(out),
            LineageNode::And(cs) | LineageNode::Or(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Number of nodes in the formula tree (a rough complexity measure used
    /// by tests and the ablation benchmarks).
    #[must_use]
    pub fn size(&self) -> usize {
        match self.node() {
            LineageNode::True | LineageNode::False | LineageNode::Var(_) => 1,
            LineageNode::Not(c) => 1 + c.size(),
            LineageNode::And(cs) | LineageNode::Or(cs) => {
                1 + cs.iter().map(Lineage::size).sum::<usize>()
            }
        }
    }

    // ----- semantics ------------------------------------------------------

    /// Evaluates the formula in the possible world described by
    /// `assignment`.
    pub fn evaluate<F: Fn(VarId) -> bool + Copy>(&self, assignment: F) -> bool {
        match self.node() {
            LineageNode::True => true,
            LineageNode::False => false,
            LineageNode::Var(v) => assignment(*v),
            LineageNode::Not(c) => !c.evaluate(assignment),
            LineageNode::And(cs) => cs.iter().all(|c| c.evaluate(assignment)),
            LineageNode::Or(cs) => cs.iter().any(|c| c.evaluate(assignment)),
        }
    }

    /// Conditions the formula on `var = value` (Shannon cofactor), applying
    /// the usual structural simplifications.
    #[must_use]
    pub fn condition(&self, var: VarId, value: bool) -> Lineage {
        match self.node() {
            LineageNode::True | LineageNode::False => self.clone(),
            LineageNode::Var(v) => {
                if *v == var {
                    if value {
                        Self::tru()
                    } else {
                        Self::fls()
                    }
                } else {
                    self.clone()
                }
            }
            LineageNode::Not(c) => Self::not(c.condition(var, value)),
            LineageNode::And(cs) => Self::and(cs.iter().map(|c| c.condition(var, value)).collect()),
            LineageNode::Or(cs) => Self::or(cs.iter().map(|c| c.condition(var, value)).collect()),
        }
    }

    /// Renders the formula with the names from `syms` (falling back to the
    /// raw variable id when a name is unknown).
    #[must_use]
    pub fn display_with(&self, syms: &SymbolTable) -> String {
        fn go(l: &Lineage, syms: &SymbolTable, out: &mut String, parent_prec: u8) {
            // precedences: Or = 1, And = 2, Not/atom = 3
            match l.node() {
                LineageNode::True => out.push('⊤'),
                LineageNode::False => out.push('⊥'),
                LineageNode::Var(v) => match syms.name(*v) {
                    Some(n) => out.push_str(n),
                    None => out.push_str(&v.to_string()),
                },
                LineageNode::Not(c) => {
                    out.push('¬');
                    go(c, syms, out, 3);
                }
                LineageNode::And(cs) => {
                    let need_paren = parent_prec > 2;
                    if need_paren {
                        out.push('(');
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" ∧ ");
                        }
                        go(c, syms, out, 2);
                    }
                    if need_paren {
                        out.push(')');
                    }
                }
                LineageNode::Or(cs) => {
                    let need_paren = parent_prec > 1;
                    if need_paren {
                        out.push('(');
                    }
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" ∨ ");
                        }
                        go(c, syms, out, 1);
                    }
                    if need_paren {
                        out.push(')');
                    }
                }
            }
        }
        let mut s = String::new();
        go(self, syms, &mut s, 0);
        s
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(&SymbolTable::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: u32) -> Lineage {
        Lineage::var(VarId(i))
    }

    #[test]
    fn constants_and_atoms() {
        assert!(Lineage::tru().is_true());
        assert!(Lineage::fls().is_false());
        assert!(!v(0).is_true());
        assert_eq!(v(3).vars().into_iter().collect::<Vec<_>>(), vec![VarId(3)]);
    }

    #[test]
    fn not_simplifications() {
        assert!(Lineage::not(Lineage::tru()).is_false());
        assert!(Lineage::not(Lineage::fls()).is_true());
        assert_eq!(Lineage::not(Lineage::not(v(1))), v(1));
    }

    #[test]
    fn and_simplifications() {
        assert!(Lineage::and(vec![]).is_true());
        assert_eq!(Lineage::and(vec![v(1)]), v(1));
        assert!(Lineage::and(vec![v(1), Lineage::fls()]).is_false());
        assert_eq!(Lineage::and(vec![v(1), Lineage::tru()]), v(1));
        // flattening and dedup
        let nested = Lineage::and(vec![Lineage::and(vec![v(1), v(2)]), v(2), v(3)]);
        match nested.node() {
            LineageNode::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn or_simplifications() {
        assert!(Lineage::or(vec![]).is_false());
        assert_eq!(Lineage::or(vec![v(1)]), v(1));
        assert!(Lineage::or(vec![v(1), Lineage::tru()]).is_true());
        assert_eq!(Lineage::or(vec![v(1), Lineage::fls()]), v(1));
        let nested = Lineage::or(vec![Lineage::or(vec![v(1), v(2)]), v(1)]);
        match nested.node() {
            LineageNode::Or(cs) => assert_eq!(cs.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn concat_functions_match_paper_shapes() {
        let mut syms = SymbolTable::new();
        let a1 = syms.intern("a1");
        let b2 = syms.intern("b2");
        let b3 = syms.intern("b3");

        let overlap = Lineage::and_concat(&Lineage::var(a1), &Lineage::var(b3));
        assert_eq!(overlap.display_with(&syms), "a1 ∧ b3");

        let neg = Lineage::and_not_concat(
            &Lineage::var(a1),
            &Lineage::or(vec![Lineage::var(b3), Lineage::var(b2)]),
        );
        assert_eq!(neg.display_with(&syms), "a1 ∧ ¬(b3 ∨ b2)");
    }

    #[test]
    fn evaluate_respects_boolean_semantics() {
        let f = Lineage::and2(v(0), Lineage::not(Lineage::or2(v(1), v(2))));
        // true only when x0=1, x1=0, x2=0
        let worlds = [
            ([true, false, false], true),
            ([true, true, false], false),
            ([true, false, true], false),
            ([false, false, false], false),
        ];
        for (w, expected) in worlds {
            assert_eq!(f.evaluate(|v| w[v.index() as usize]), expected);
        }
    }

    #[test]
    fn condition_produces_cofactors() {
        let f = Lineage::and2(v(0), Lineage::or2(v(1), v(2)));
        assert_eq!(f.condition(VarId(0), false), Lineage::fls());
        assert_eq!(f.condition(VarId(0), true), Lineage::or2(v(1), v(2)));
        assert_eq!(f.condition(VarId(1), true), v(0));
    }

    #[test]
    fn size_counts_nodes() {
        let f = Lineage::and2(v(0), Lineage::not(Lineage::or2(v(1), v(2))));
        // And(Var, Not(Or(Var, Var))) = 1 + 1 + (1 + (1 + 1 + 1)) = 6
        assert_eq!(f.size(), 6);
    }

    #[test]
    fn display_uses_symbols_and_falls_back_to_ids() {
        let mut syms = SymbolTable::new();
        let a1 = syms.intern("a1");
        let f = Lineage::and2(Lineage::var(a1), Lineage::var(VarId(42)));
        assert_eq!(f.display_with(&syms), "a1 ∧ x42");
    }

    // ---- property tests -------------------------------------------------

    fn arb_lineage() -> impl Strategy<Value = Lineage> {
        let leaf = prop_oneof![
            (0u32..6).prop_map(|i| Lineage::var(VarId(i))),
            Just(Lineage::tru()),
            Just(Lineage::fls()),
        ];
        leaf.prop_recursive(4, 32, 4, |inner| {
            prop_oneof![
                inner.clone().prop_map(Lineage::not),
                proptest::collection::vec(inner.clone(), 2..4).prop_map(Lineage::and),
                proptest::collection::vec(inner, 2..4).prop_map(Lineage::or),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_double_negation_preserves_semantics(f in arb_lineage(), world in proptest::collection::vec(any::<bool>(), 6)) {
            let g = Lineage::not(Lineage::not(f.clone()));
            let assign = |v: VarId| world[v.index() as usize];
            prop_assert_eq!(f.evaluate(assign), g.evaluate(assign));
        }

        #[test]
        fn prop_condition_agrees_with_evaluation(f in arb_lineage(), world in proptest::collection::vec(any::<bool>(), 6), var in 0u32..6) {
            let var = VarId(var);
            let value = world[var.index() as usize];
            let cofactor = f.condition(var, value);
            let assign = |v: VarId| world[v.index() as usize];
            prop_assert_eq!(f.evaluate(assign), cofactor.evaluate(assign));
            // the cofactor no longer depends on `var`
            prop_assert!(!cofactor.vars().contains(&var));
        }

        #[test]
        fn prop_de_morgan(f in arb_lineage(), g in arb_lineage(), world in proptest::collection::vec(any::<bool>(), 6)) {
            let assign = |v: VarId| world[v.index() as usize];
            let lhs = Lineage::not(Lineage::and2(f.clone(), g.clone()));
            let rhs = Lineage::or2(Lineage::not(f), Lineage::not(g));
            prop_assert_eq!(lhs.evaluate(assign), rhs.evaluate(assign));
        }

        #[test]
        fn prop_constructors_preserve_semantics(fs in proptest::collection::vec(arb_lineage(), 0..4), world in proptest::collection::vec(any::<bool>(), 6)) {
            let assign = |v: VarId| world[v.index() as usize];
            let and = Lineage::and(fs.clone());
            let or = Lineage::or(fs.clone());
            prop_assert_eq!(and.evaluate(assign), fs.iter().all(|f| f.evaluate(assign)));
            prop_assert_eq!(or.evaluate(assign), fs.iter().any(|f| f.evaluate(assign)));
        }
    }
}
