//! # tpdb-lineage
//!
//! Boolean lineage formulas and exact probability computation for
//! probabilistic databases.
//!
//! In a temporal-probabilistic (TP) database every base tuple is annotated
//! with a boolean random variable and a marginal probability. Derived tuples
//! carry a *lineage*: a boolean formula over those variables describing in
//! which possible worlds the derived tuple exists. The probability of a
//! derived tuple is the probability that its lineage evaluates to `true`.
//!
//! This crate implements
//!
//! * the lineage formula representation ([`Lineage`]) with structural
//!   simplification,
//! * the lineage concatenation functions used when forming output tuples
//!   from generalized lineage-aware temporal windows — [`and_concat`],
//!   [`and_not_concat`] and [`pass_through`] (Section II of the paper),
//! * exact probability computation ([`ProbabilityEngine`]) using
//!   independence-based decomposition with a Shannon-expansion fallback,
//! * a hash-consed formula arena ([`LineageInterner`]) deduplicating
//!   structurally equal nodes behind dense [`LineageRef`] ids — the
//!   representation the window streams and the probability memo operate
//!   on, with [`Lineage`] trees as the serde/test conversion boundary,
//! * a [`SymbolTable`] mapping human-readable base-tuple names (`a1`, `b3`,
//!   ...) to variable identifiers.
//!
//! ## Example
//!
//! ```
//! use tpdb_lineage::{Lineage, ProbabilityEngine, SymbolTable};
//!
//! let mut syms = SymbolTable::new();
//! let a1 = syms.intern("a1");
//! let b2 = syms.intern("b2");
//! let b3 = syms.intern("b3");
//!
//! // λ = a1 ∧ ¬(b3 ∨ b2): "Ann wants to visit ZAK and no hotel is available"
//! let lambda = Lineage::and_not_concat(
//!     &Lineage::var(a1),
//!     &Lineage::or(vec![Lineage::var(b3), Lineage::var(b2)]),
//! );
//!
//! let mut engine = ProbabilityEngine::new();
//! engine.set(a1, 0.7);
//! engine.set(b2, 0.6);
//! engine.set(b3, 0.7);
//! let p = engine.probability(&lambda);
//! assert!((p - 0.084).abs() < 1e-9); // matches Fig. 1b of the paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disjunction;
mod formula;
mod intern;
mod prob;
mod symbols;

pub use disjunction::IncrementalDisjunction;
pub use formula::{Lineage, LineageNode};
pub use intern::{
    FxHashMap, FxHashSet, FxHasher, InternedDisjunction, InternedNode, LineageInterner, LineageRef,
};
pub use prob::{ProbabilityEngine, ProbabilityError};
pub use symbols::{SymbolTable, SymbolTableError, VarId};

/// Lineage concatenation for overlapping windows: `λr ∧ λs`.
///
/// Convenience free function mirroring the paper's `and` concatenation
/// function; equivalent to [`Lineage::and_concat`].
#[must_use]
pub fn and_concat(lambda_r: &Lineage, lambda_s: &Lineage) -> Lineage {
    Lineage::and_concat(lambda_r, lambda_s)
}

/// Lineage concatenation for negating windows: `λr ∧ ¬λs`.
///
/// Convenience free function mirroring the paper's `andNot` concatenation
/// function; equivalent to [`Lineage::and_not_concat`].
#[must_use]
pub fn and_not_concat(lambda_r: &Lineage, lambda_s: &Lineage) -> Lineage {
    Lineage::and_not_concat(lambda_r, lambda_s)
}

/// Lineage concatenation for unmatched windows: only `λr` is passed on.
#[must_use]
pub fn pass_through(lambda_r: &Lineage) -> Lineage {
    lambda_r.clone()
}
