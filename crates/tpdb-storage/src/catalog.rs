//! The database catalog: named relations, the lineage symbol table and base
//! probabilities.

use crate::error::StorageError;
use crate::relation::TpRelation;
use crate::schema::Schema;
use crate::tuple::TpTuple;
use crate::value::Value;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use tpdb_lineage::{Lineage, ProbabilityEngine, SymbolTable, VarId};
use tpdb_temporal::Interval;

/// A multiply-and-fold hasher for dense `u32` lineage-variable ids. The
/// marginal map takes one insert per base tuple on the snapshot-load and
/// bulk-import paths, where SipHash shows up in profiles; Fibonacci
/// multiplication is plenty for keys the catalog itself hands out.
#[derive(Debug, Default)]
pub(crate) struct VarIdHasher(u64);

impl std::hash::Hasher for VarIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.0 ^= self.0 >> 32;
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

/// The catalog's marginal-probability map (one entry per base tuple).
pub(crate) type MarginalMap = HashMap<VarId, f64, BuildHasherDefault<VarIdHasher>>;

/// The catalog of a TP database.
///
/// The catalog owns
///
/// * the registered base relations (shared, read-mostly — guarded by a
///   [`RwLock`] so that the query engine can scan relations from multiple
///   operator threads),
/// * the [`SymbolTable`] assigning one lineage variable per base tuple, and
/// * the marginal probabilities of those variables.
///
/// It plays the role of the PostgreSQL system catalog in the paper's
/// implementation.
///
/// Every mutation of the relation set (register, create, drop) bumps the
/// catalog's **schema epoch** ([`schema_epoch`](Self::schema_epoch)), a
/// monotonic counter that cached query plans are keyed on: a plan prepared
/// against epoch `e` is stale — and must be re-validated — once the
/// catalog reports an epoch other than `e`.
#[derive(Debug, Default)]
pub struct Catalog {
    relations: RwLock<HashMap<String, Arc<TpRelation>>>,
    symbols: SymbolTable,
    probabilities: MarginalMap,
    /// Monotonic counter of relation-set mutations (the plan-cache key).
    epoch: u64,
}

/// The relation map guarded by the catalog lock.
type RelationMap = HashMap<String, Arc<TpRelation>>;

impl Clone for Catalog {
    /// Deep-clones the catalog metadata while sharing the relation data:
    /// the clone gets its own relation map, symbol table, marginals and
    /// epoch counter, but the `Arc<TpRelation>` payloads are shared. This
    /// is the copy-on-write step of [`crate::SharedCatalog::update`]: a
    /// mutation clones the current catalog, applies its change and swaps
    /// the result in, so pinned readers keep an immutable view.
    fn clone(&self) -> Self {
        // A poisoned lock is recovered with `into_inner`: the map cannot be
        // observed torn (its mutations are single `HashMap` calls), and
        // `Clone` has no error channel. Same justification as
        // `relation_names`.
        let relations = self
            .relations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        Self {
            relations: RwLock::new(relations),
            symbols: self.symbols.clone(),
            probabilities: self.probabilities.clone(),
            epoch: self.epoch,
        }
    }
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the relation map; a poisoned lock surfaces as
    /// [`StorageError::CatalogPoisoned`].
    fn read_relations(&self) -> Result<RwLockReadGuard<'_, RelationMap>, StorageError> {
        self.relations
            .read()
            .map_err(|_| StorageError::CatalogPoisoned)
    }

    /// Write access to the relation map; a poisoned lock surfaces as
    /// [`StorageError::CatalogPoisoned`].
    fn write_relations(&self) -> Result<RwLockWriteGuard<'_, RelationMap>, StorageError> {
        self.relations
            .write()
            .map_err(|_| StorageError::CatalogPoisoned)
    }

    /// Starts building a new base relation. Tuples pushed through the
    /// returned [`RelationBuilder`] are assigned fresh atomic lineage
    /// variables named `<relation><ordinal>` (e.g. `a1`, `a2`, ...), exactly
    /// like the running example of the paper.
    pub fn create_relation(
        &mut self,
        name: &str,
        schema: Schema,
    ) -> Result<RelationBuilder<'_>, StorageError> {
        if self.read_relations()?.contains_key(name) {
            return Err(StorageError::RelationExists(name.to_owned()));
        }
        Ok(RelationBuilder {
            catalog: self,
            relation: TpRelation::new(name, schema),
            error: None,
        })
    }

    /// Registers an externally built relation (e.g. produced by a generator
    /// or an operator) under its own name. Atomic lineages already present
    /// in the relation are registered with their tuple probabilities.
    pub fn register(&mut self, relation: TpRelation) -> Result<(), StorageError> {
        let name = relation.name().to_owned();
        if self.read_relations()?.contains_key(&name) {
            return Err(StorageError::RelationExists(name));
        }
        for t in relation.iter() {
            if let tpdb_lineage::LineageNode::Var(v) = t.lineage().node() {
                self.probabilities.insert(*v, t.probability());
            }
        }
        self.write_relations()?.insert(name, Arc::new(relation));
        self.epoch += 1;
        Ok(())
    }

    /// The current schema epoch: a monotonic counter bumped on every
    /// mutation of the relation set. Query-layer plan caches compare the
    /// epoch a plan was prepared under with the current value to detect
    /// staleness.
    #[must_use]
    pub fn schema_epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<Arc<TpRelation>, StorageError> {
        self.read_relations()?
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))
    }

    /// Removes a relation from the catalog.
    pub fn drop_relation(&mut self, name: &str) -> Result<(), StorageError> {
        self.write_relations()?
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))?;
        self.epoch += 1;
        Ok(())
    }

    /// Names of all registered relations (sorted).
    ///
    /// Infallible by design: a poisoned lock is recovered with
    /// [`PoisonError::into_inner`] — the map cannot be observed torn (its
    /// mutations are single `HashMap` calls), and a read-only listing must
    /// not fail an otherwise healthy session.
    #[must_use]
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .relations
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The lineage symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table (used by generators that intern
    /// their own variables).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// The registered probability of a base-tuple variable.
    #[must_use]
    pub fn probability_of(&self, var: VarId) -> Option<f64> {
        self.probabilities.get(&var).copied()
    }

    /// Builds a [`ProbabilityEngine`] preloaded with every base-tuple
    /// probability known to the catalog.
    #[must_use]
    pub fn probability_engine(&self) -> ProbabilityEngine {
        let mut engine = ProbabilityEngine::new();
        engine.set_all(self.probabilities.iter().map(|(&v, &p)| (v, p)));
        engine
    }

    /// The full marginal-probability map (snapshot serialization support).
    pub(crate) fn marginals(&self) -> &MarginalMap {
        &self.probabilities
    }

    /// Atomically replaces the catalog's entire contents — symbol table,
    /// marginals and relation set — and bumps the schema epoch once. This is
    /// the commit point of [`Catalog::load_snapshot`]: the caller fully
    /// decodes and validates a snapshot first, so a failed load never leaves
    /// the catalog partially mutated.
    pub(crate) fn replace_contents(
        &mut self,
        symbols: SymbolTable,
        probabilities: MarginalMap,
        relations: Vec<TpRelation>,
    ) -> Result<(), StorageError> {
        let map: RelationMap = relations
            .into_iter()
            .map(|r| (r.name().to_owned(), Arc::new(r)))
            .collect();
        *self.write_relations()? = map;
        self.symbols = symbols;
        self.probabilities = probabilities;
        self.epoch += 1;
        Ok(())
    }
}

/// Incremental builder for base relations registered in a [`Catalog`].
#[derive(Debug)]
pub struct RelationBuilder<'a> {
    catalog: &'a mut Catalog,
    relation: TpRelation,
    error: Option<StorageError>,
}

impl RelationBuilder<'_> {
    /// Appends a base tuple with the given facts, validity interval and
    /// probability. A fresh lineage variable `<relation><ordinal>` is
    /// interned for it. Errors are deferred until [`RelationBuilder::finish`]
    /// / [`RelationBuilder::try_finish`] so pushes can be chained.
    pub fn push(&mut self, facts: Vec<Value>, interval: Interval, probability: f64) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        let ordinal = self.relation.len() + 1;
        let symbol = format!("{}{}", self.relation.name(), ordinal);
        let var = self.catalog.symbols.intern(&symbol);
        let tuple = TpTuple::new(facts, Lineage::var(var), interval, probability);
        if let Err(e) = self.relation.push(tuple) {
            self.error = Some(e);
        } else {
            self.catalog.probabilities.insert(var, probability);
        }
        self
    }

    /// Finalizes the relation, registers it in the catalog and returns a
    /// shared handle.
    ///
    /// # Panics
    /// Panics if any push failed; use [`RelationBuilder::try_finish`] to
    /// handle errors.
    #[must_use]
    pub fn finish(self) -> Arc<TpRelation> {
        // The panic is this method's documented contract (the fallible
        // sibling is `try_finish`). tpdb-lint: allow(no-panic-in-lib)
        self.try_finish().expect("relation construction failed")
    }

    /// Finalizes the relation, surfacing any deferred error.
    pub fn try_finish(self) -> Result<Arc<TpRelation>, StorageError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let name = self.relation.name().to_owned();
        let arc = Arc::new(self.relation);
        self.catalog
            .write_relations()?
            .insert(name, Arc::clone(&arc));
        self.catalog.epoch += 1;
        Ok(arc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Schema {
        Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)])
    }

    #[test]
    fn build_base_relation_with_atomic_lineages() {
        let mut c = Catalog::new();
        let mut b = c.create_relation("a", schema()).unwrap();
        b.push(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Interval::new(2, 8),
            0.7,
        )
        .push(
            vec![Value::str("Jim"), Value::str("WEN")],
            Interval::new(7, 10),
            0.8,
        );
        let a = b.finish();
        assert_eq!(a.len(), 2);
        // symbols a1, a2 were interned and probabilities recorded
        let a1 = c.symbols().lookup("a1").unwrap();
        let a2 = c.symbols().lookup("a2").unwrap();
        assert_eq!(c.probability_of(a1), Some(0.7));
        assert_eq!(c.probability_of(a2), Some(0.8));
        assert_eq!(a.tuple(0).lineage(), &Lineage::var(a1));
    }

    #[test]
    fn duplicate_relation_names_are_rejected() {
        let mut c = Catalog::new();
        let _ = c.create_relation("a", schema()).unwrap().finish();
        assert!(matches!(
            c.create_relation("a", schema()),
            Err(StorageError::RelationExists(_))
        ));
    }

    #[test]
    fn lookup_and_drop() {
        let mut c = Catalog::new();
        let _ = c.create_relation("a", schema()).unwrap().finish();
        assert!(c.relation("a").is_ok());
        assert_eq!(c.relation_names(), vec!["a".to_owned()]);
        c.drop_relation("a").unwrap();
        assert!(matches!(
            c.relation("a"),
            Err(StorageError::UnknownRelation(_))
        ));
        assert!(c.drop_relation("a").is_err());
    }

    #[test]
    fn builder_defers_errors_until_finish() {
        let mut c = Catalog::new();
        let mut b = c.create_relation("a", schema()).unwrap();
        b.push(vec![Value::str("Ann")], Interval::new(2, 8), 0.7); // wrong arity
        assert!(b.try_finish().is_err());
    }

    #[test]
    fn schema_epoch_bumps_on_every_relation_set_mutation() {
        let mut c = Catalog::new();
        assert_eq!(c.schema_epoch(), 0);
        let _ = c.create_relation("a", schema()).unwrap().finish();
        assert_eq!(c.schema_epoch(), 1);
        c.register(TpRelation::new("b", schema())).unwrap();
        assert_eq!(c.schema_epoch(), 2);
        c.drop_relation("a").unwrap();
        assert_eq!(c.schema_epoch(), 3);
        // failed mutations do not bump the epoch
        assert!(c.drop_relation("a").is_err());
        assert!(c.register(TpRelation::new("b", schema())).is_err());
        assert!(c.create_relation("b", schema()).is_err());
        assert_eq!(c.schema_epoch(), 3);
    }

    #[test]
    fn register_external_relation_records_probabilities() {
        let mut c = Catalog::new();
        let v = c.symbols_mut().intern("x1");
        let mut r = TpRelation::new("x", schema());
        r.push(TpTuple::new(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Lineage::var(v),
            Interval::new(0, 5),
            0.25,
        ))
        .unwrap();
        c.register(r).unwrap();
        assert_eq!(c.probability_of(v), Some(0.25));
        let engine = c.probability_engine();
        assert_eq!(engine.get(v), Some(0.25));
    }

    #[test]
    fn probability_engine_contains_all_base_vars() {
        let mut c = Catalog::new();
        let mut b = c.create_relation("a", schema()).unwrap();
        b.push(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Interval::new(2, 8),
            0.7,
        );
        let _ = b.finish();
        let mut engine = c.probability_engine();
        let a1 = c.symbols().lookup("a1").unwrap();
        assert!((engine.probability(&Lineage::var(a1)) - 0.7).abs() < 1e-12);
    }
}
