//! # tpdb-storage
//!
//! The temporal-probabilistic (TP) data model and an in-memory storage
//! engine: values, schemas, tuples, relations, catalogs and import/export.
//!
//! A TP relation has schema `(F, λ, T, p)`:
//!
//! * `F` — the non-temporal *fact* attributes (regular relational columns),
//! * `λ` — the tuple's lineage, a boolean formula over base-tuple variables,
//! * `T` — the half-open validity interval `[Ts, Te)`,
//! * `p` — the probability that the fact holds at each time point of `T`.
//!
//! Base relations carry atomic lineages (a fresh variable per tuple), derived
//! relations carry compound lineages. A TP relation is *duplicate-free*: for
//! any fact, the valid intervals of its tuples do not overlap. This crate
//! stands in for the storage layer PostgreSQL provided in the paper's
//! implementation.
//!
//! ```
//! use tpdb_storage::{Catalog, DataType, Schema, Value};
//! use tpdb_temporal::Interval;
//!
//! let mut catalog = Catalog::new();
//! let schema = Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]);
//! let mut builder = catalog.create_relation("a", schema).unwrap();
//! builder.push(
//!     vec![Value::str("Ann"), Value::str("ZAK")],
//!     Interval::new(2, 8),
//!     0.7,
//! );
//! builder.push(
//!     vec![Value::str("Jim"), Value::str("WEN")],
//!     Interval::new(7, 10),
//!     0.8,
//! );
//! let a = builder.finish();
//! assert_eq!(a.len(), 2);
//! assert_eq!(a.tuple(0).probability(), 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod error;
mod integrity;
mod relation;
mod schema;
mod shared;
pub mod snapshot;
mod text;
mod tuple;
mod value;

pub use catalog::{Catalog, RelationBuilder};
pub use error::StorageError;
pub use integrity::{check_duplicate_free, IntegrityViolation};
pub use relation::TpRelation;
pub use schema::{DataType, Field, Schema};
pub use shared::SharedCatalog;
pub use text::{relation_from_text, relation_to_text};
pub use tuple::TpTuple;
pub use value::Value;
