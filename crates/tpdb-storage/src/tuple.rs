//! TP tuples.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use tpdb_lineage::Lineage;
use tpdb_temporal::Interval;

/// A temporal-probabilistic tuple `(F, λ, T, p)`.
///
/// * `facts` — the values of the non-temporal attributes `F`,
/// * `lineage` — the boolean lineage formula `λ`,
/// * `interval` — the validity interval `T = [Ts, Te)`,
/// * `probability` — `p = Pr(λ)`, the probability that the fact holds at
///   each time point of `T`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpTuple {
    facts: Vec<Value>,
    lineage: Lineage,
    interval: Interval,
    probability: f64,
}

impl TpTuple {
    /// Creates a tuple. The probability is clamped into `[0, 1]` only by the
    /// caller's validation; this constructor stores it verbatim.
    #[must_use]
    pub fn new(facts: Vec<Value>, lineage: Lineage, interval: Interval, probability: f64) -> Self {
        Self {
            facts,
            lineage,
            interval,
            probability,
        }
    }

    /// The fact attribute values.
    #[must_use]
    pub fn facts(&self) -> &[Value] {
        &self.facts
    }

    /// The fact value at position `idx`.
    #[must_use]
    pub fn fact(&self, idx: usize) -> &Value {
        &self.facts[idx]
    }

    /// The lineage formula.
    #[must_use]
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// The validity interval.
    #[must_use]
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// The tuple probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Returns a copy of the tuple restricted to the given interval
    /// (used by the alignment operators of the TA baseline).
    #[must_use]
    pub fn with_interval(&self, interval: Interval) -> Self {
        Self {
            facts: self.facts.clone(),
            lineage: self.lineage.clone(),
            interval,
            probability: self.probability,
        }
    }

    /// Returns a copy of the tuple with a different lineage and probability
    /// (used when forming output tuples from windows).
    #[must_use]
    pub fn with_lineage(&self, lineage: Lineage, probability: f64) -> Self {
        Self {
            facts: self.facts.clone(),
            lineage,
            interval: self.interval,
            probability,
        }
    }

    /// Is the tuple valid at time point `t`?
    #[must_use]
    pub fn valid_at(&self, t: tpdb_temporal::TimePoint) -> bool {
        self.interval.contains_point(t)
    }
}

impl fmt::Display for TpTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(
            f,
            " | {} | {} | {:.4})",
            self.lineage, self.interval, self.probability
        )
    }
}

#[cfg(test)]
// Tests assert bit-exact values on purpose (reproducibility contract).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use tpdb_lineage::VarId;

    fn tuple() -> TpTuple {
        TpTuple::new(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Lineage::var(VarId(0)),
            Interval::new(2, 8),
            0.7,
        )
    }

    #[test]
    fn accessors() {
        let t = tuple();
        assert_eq!(t.facts().len(), 2);
        assert_eq!(t.fact(0), &Value::str("Ann"));
        assert_eq!(t.interval(), Interval::new(2, 8));
        assert_eq!(t.probability(), 0.7);
        assert!(t.valid_at(2));
        assert!(t.valid_at(7));
        assert!(!t.valid_at(8));
    }

    #[test]
    fn with_interval_preserves_everything_else() {
        let t = tuple().with_interval(Interval::new(4, 6));
        assert_eq!(t.interval(), Interval::new(4, 6));
        assert_eq!(t.fact(1), &Value::str("ZAK"));
        assert_eq!(t.probability(), 0.7);
    }

    #[test]
    fn with_lineage_swaps_lineage_and_probability() {
        let new_lin = Lineage::and2(Lineage::var(VarId(0)), Lineage::var(VarId(1)));
        let t = tuple().with_lineage(new_lin.clone(), 0.42);
        assert_eq!(t.lineage(), &new_lin);
        assert_eq!(t.probability(), 0.42);
        assert_eq!(t.interval(), Interval::new(2, 8));
    }

    #[test]
    fn display_contains_all_parts() {
        let s = tuple().to_string();
        assert!(s.contains("Ann"));
        assert!(s.contains("[2,8)"));
        assert!(s.contains("0.7000"));
    }
}
