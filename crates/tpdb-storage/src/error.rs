//! Error types of the storage layer.

use crate::schema::DataType;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A tuple had the wrong number of fact attributes.
    ArityMismatch {
        /// Arity required by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A fact value did not match the column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Type required by the schema.
        expected: DataType,
        /// Rendering of the offending value.
        got: String,
    },
    /// A probability outside `[0, 1]` was supplied.
    InvalidProbability(f64),
    /// A relation with this name already exists in the catalog.
    RelationExists(String),
    /// No relation with this name exists in the catalog.
    UnknownRelation(String),
    /// A textual import line could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A physical plan was forced that cannot execute the given condition
    /// (e.g. a hash or sweep overlap join over a non-equi θ). Forced plans
    /// fail loudly instead of silently downgrading so that benchmarks and
    /// `EXPLAIN` never report a plan that did not actually run.
    PlanNotApplicable {
        /// Human-readable plan name (e.g. `sweep`).
        plan: String,
        /// Why the plan cannot run.
        reason: String,
    },
    /// The two inputs of a TP set operation are not union-compatible: the
    /// named column differs between the sides (its value type, or — in the
    /// query layer — its name). Arity mismatches are reported as
    /// [`StorageError::ArityMismatch`].
    UnionIncompatible {
        /// The offending column (named after the left input's schema).
        column: String,
        /// How the sides differ (e.g. `left is INT, right is STR`).
        detail: String,
    },
    /// The catalog's relation lock was poisoned: another thread panicked
    /// while holding it. The relation map itself cannot be observed torn
    /// (every mutation is a single `HashMap` call), but the panic signals a
    /// broken invariant elsewhere, so catalog entry points surface the
    /// condition instead of unwinding the caller.
    CatalogPoisoned,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} fact attributes, got {got}"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column {column}: expected {expected}, got {got}"
            ),
            StorageError::InvalidProbability(p) => {
                write!(f, "invalid probability {p}: must be within [0, 1]")
            }
            StorageError::RelationExists(n) => write!(f, "relation already exists: {n}"),
            StorageError::UnknownRelation(n) => write!(f, "unknown relation: {n}"),
            StorageError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            StorageError::PlanNotApplicable { plan, reason } => {
                write!(f, "plan {plan} is not applicable: {reason}")
            }
            StorageError::UnionIncompatible { column, detail } => {
                write!(
                    f,
                    "set operation inputs are not union-compatible at column {column}: {detail}"
                )
            }
            StorageError::CatalogPoisoned => {
                write!(
                    f,
                    "catalog lock poisoned: a thread panicked while holding it"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(StorageError::UnknownColumn("Loc".into())
            .to_string()
            .contains("Loc"));
        assert!(StorageError::ArityMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(StorageError::InvalidProbability(1.2)
            .to_string()
            .contains("1.2"));
        assert!(StorageError::ParseError {
            line: 4,
            message: "bad interval".into()
        }
        .to_string()
        .contains("line 4"));
        let e = StorageError::UnionIncompatible {
            column: "Loc".into(),
            detail: "left is INT, right is STR".into(),
        }
        .to_string();
        assert!(e.contains("union-compatible"), "{e}");
        assert!(e.contains("column Loc"), "{e}");
    }
}
