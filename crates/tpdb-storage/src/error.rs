//! Error types of the storage layer.

use crate::schema::DataType;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A tuple had the wrong number of fact attributes.
    ArityMismatch {
        /// Arity required by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A fact value did not match the column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Type required by the schema.
        expected: DataType,
        /// Rendering of the offending value.
        got: String,
    },
    /// A probability outside `[0, 1]` was supplied.
    InvalidProbability(f64),
    /// A relation with this name already exists in the catalog.
    RelationExists(String),
    /// No relation with this name exists in the catalog.
    UnknownRelation(String),
    /// A textual import line could not be parsed.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A physical plan was forced that cannot execute the given condition
    /// (e.g. a hash or sweep overlap join over a non-equi θ). Forced plans
    /// fail loudly instead of silently downgrading so that benchmarks and
    /// `EXPLAIN` never report a plan that did not actually run.
    PlanNotApplicable {
        /// Human-readable plan name (e.g. `sweep`).
        plan: String,
        /// Why the plan cannot run.
        reason: String,
    },
    /// The two inputs of a TP set operation are not union-compatible: the
    /// named column differs between the sides (its value type, or — in the
    /// query layer — its name). Arity mismatches are reported as
    /// [`StorageError::ArityMismatch`].
    UnionIncompatible {
        /// The offending column (named after the left input's schema).
        column: String,
        /// How the sides differ (e.g. `left is INT, right is STR`).
        detail: String,
    },
    /// The catalog's relation lock was poisoned: another thread panicked
    /// while holding it. The relation map itself cannot be observed torn
    /// (every mutation is a single `HashMap` call), but the panic signals a
    /// broken invariant elsewhere, so catalog entry points surface the
    /// condition instead of unwinding the caller.
    CatalogPoisoned,
    /// A snapshot file did not start with the `TPDBSNAP` magic bytes.
    SnapshotBadMagic,
    /// A snapshot file uses a format version this build cannot read.
    SnapshotUnsupportedVersion {
        /// Version stamped in the file header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// A snapshot section's payload does not match its stored checksum.
    SnapshotChecksumMismatch {
        /// Name of the damaged section (e.g. `relations`).
        section: String,
        /// Checksum stored in the section header.
        expected: u64,
        /// Checksum recomputed over the payload.
        got: u64,
    },
    /// A snapshot file ended before a declared structure was complete.
    SnapshotTruncated {
        /// What was being decoded when the bytes ran out.
        context: String,
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A snapshot decoded into structurally invalid data (impossible tags,
    /// mis-sized sections, duplicate names, malformed formulas, ...).
    SnapshotCorrupt {
        /// Section in which the corruption was detected.
        section: String,
        /// Description of the problem.
        detail: String,
    },
    /// A lineage formula or marginal entry in a snapshot referenced a
    /// variable id at or above the snapshot's declared variable-space bound
    /// (the symbol dictionary plus any anonymous generator variables).
    SnapshotBadSymbol {
        /// The out-of-range variable id.
        id: u32,
        /// The variable-space bound stamped in the snapshot.
        bound: u32,
    },
    /// A snapshot carried a probability that is non-finite or outside
    /// `[0, 1]`.
    SnapshotInvalidProbability(f64),
    /// The underlying file could not be read or written. The `std::io`
    /// error is rendered to a string so the variant stays `Clone + PartialEq`
    /// like the rest of the taxonomy.
    SnapshotIo {
        /// Path of the offending file.
        path: String,
        /// Rendering of the I/O error.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} fact attributes, got {got}"
                )
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column {column}: expected {expected}, got {got}"
            ),
            StorageError::InvalidProbability(p) => {
                write!(f, "invalid probability {p}: must be within [0, 1]")
            }
            StorageError::RelationExists(n) => write!(f, "relation already exists: {n}"),
            StorageError::UnknownRelation(n) => write!(f, "unknown relation: {n}"),
            StorageError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            StorageError::PlanNotApplicable { plan, reason } => {
                write!(f, "plan {plan} is not applicable: {reason}")
            }
            StorageError::UnionIncompatible { column, detail } => {
                write!(
                    f,
                    "set operation inputs are not union-compatible at column {column}: {detail}"
                )
            }
            StorageError::CatalogPoisoned => {
                write!(
                    f,
                    "catalog lock poisoned: a thread panicked while holding it"
                )
            }
            StorageError::SnapshotBadMagic => {
                write!(f, "snapshot has bad magic bytes: not a TPDB snapshot file")
            }
            StorageError::SnapshotUnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is not supported (this build reads up to \
                     version {supported})"
                )
            }
            StorageError::SnapshotChecksumMismatch {
                section,
                expected,
                got,
            } => write!(
                f,
                "snapshot section `{section}` failed its checksum: stored {expected:#018x}, \
                 recomputed {got:#018x}"
            ),
            StorageError::SnapshotTruncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated while reading {context}: needed {needed} byte(s), \
                 {available} available"
            ),
            StorageError::SnapshotCorrupt { section, detail } => {
                write!(f, "snapshot section `{section}` is corrupt: {detail}")
            }
            StorageError::SnapshotBadSymbol { id, bound } => write!(
                f,
                "snapshot references symbol id {id}, outside the snapshot's declared variable \
                 space of {bound} ids"
            ),
            StorageError::SnapshotInvalidProbability(p) => {
                write!(
                    f,
                    "snapshot carries invalid probability {p}: must be finite and within [0, 1]"
                )
            }
            StorageError::SnapshotIo { path, message } => {
                write!(f, "snapshot I/O error on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(StorageError::UnknownColumn("Loc".into())
            .to_string()
            .contains("Loc"));
        assert!(StorageError::ArityMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(StorageError::InvalidProbability(1.2)
            .to_string()
            .contains("1.2"));
        assert!(StorageError::ParseError {
            line: 4,
            message: "bad interval".into()
        }
        .to_string()
        .contains("line 4"));
        let e = StorageError::UnionIncompatible {
            column: "Loc".into(),
            detail: "left is INT, right is STR".into(),
        }
        .to_string();
        assert!(e.contains("union-compatible"), "{e}");
        assert!(e.contains("column Loc"), "{e}");
    }

    #[test]
    fn snapshot_display_messages_carry_their_evidence() {
        assert!(StorageError::SnapshotBadMagic.to_string().contains("magic"));
        let e = StorageError::SnapshotUnsupportedVersion {
            found: 9,
            supported: 1,
        }
        .to_string();
        assert!(e.contains('9') && e.contains('1'), "{e}");
        let e = StorageError::SnapshotChecksumMismatch {
            section: "relations".into(),
            expected: 0xdead,
            got: 0xbeef,
        }
        .to_string();
        assert!(e.contains("relations") && e.contains("dead"), "{e}");
        let e = StorageError::SnapshotTruncated {
            context: "symbol name".into(),
            needed: 8,
            available: 3,
        }
        .to_string();
        assert!(e.contains("symbol name") && e.contains('8'), "{e}");
        let e = StorageError::SnapshotBadSymbol { id: 42, bound: 10 }.to_string();
        assert!(e.contains("42") && e.contains("10"), "{e}");
        assert!(StorageError::SnapshotInvalidProbability(f64::NAN)
            .to_string()
            .contains("NaN"));
        let e = StorageError::SnapshotIo {
            path: "/tmp/x.snap".into(),
            message: "permission denied".into(),
        }
        .to_string();
        assert!(e.contains("/tmp/x.snap") && e.contains("permission"), "{e}");
    }
}
