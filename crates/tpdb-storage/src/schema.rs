//! Relation schemas for the fact attributes of TP relations.

use crate::error::StorageError;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The data type of a fact attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit floating point.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Whether `value` is admissible for this type (NULL is admissible for
    /// every type).
    #[must_use]
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Bool, Value::Bool(_))
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Str, Value::Str(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
        };
        write!(f, "{s}")
    }
}

/// A named, typed fact attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    #[must_use]
    pub fn new(name: &str, dtype: DataType) -> Self {
        Self {
            name: name.to_owned(),
            dtype,
        }
    }
}

/// The schema of the fact part `F` of a TP relation.
///
/// The temporal attribute `T`, the lineage `λ` and the probability `p` are
/// implicit — every TP relation has them — so the schema only describes the
/// fact attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a list of fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    #[must_use]
    pub fn tp(fields: &[(&str, DataType)]) -> Self {
        Self::new(fields.iter().map(|(n, t)| Field::new(n, *t)).collect())
    }

    /// The fields of the schema, in order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fact attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of the attribute called `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Position of `name`, as an error-carrying lookup.
    pub fn require(&self, name: &str) -> Result<usize, StorageError> {
        self.index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// Concatenates two schemas (used for join outputs `F_r ∘ F_s`). Columns
    /// of the right schema that collide with a left column name are prefixed
    /// with `prefix`.
    #[must_use]
    pub fn concat(&self, other: &Schema, prefix: &str) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.index_of(&f.name).is_some() {
                format!("{prefix}{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(&name, f.dtype));
        }
        Schema { fields }
    }

    /// Validates that `facts` matches the schema's arity and types.
    pub fn validate(&self, facts: &[Value]) -> Result<(), StorageError> {
        if facts.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: facts.len(),
            });
        }
        for (field, value) in self.fields.iter().zip(facts) {
            if !field.dtype.admits(value) {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype,
                    got: format!("{value}"),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.dtype)?;
        }
        write!(f, ", λ, T, p)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup_and_arity() {
        let s = Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("Loc"), Some(1));
        assert_eq!(s.index_of("Hotel"), None);
        assert!(s.require("Name").is_ok());
        assert!(matches!(
            s.require("missing"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn concat_prefixes_colliding_names() {
        let a = Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]);
        let b = Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]);
        let c = a.concat(&b, "b_");
        assert_eq!(c.arity(), 4);
        assert_eq!(c.fields()[2].name, "Hotel");
        assert_eq!(c.fields()[3].name, "b_Loc");
    }

    #[test]
    fn validation_checks_arity_and_types() {
        let s = Schema::tp(&[("Name", DataType::Str), ("Age", DataType::Int)]);
        assert!(s.validate(&[Value::str("Ann"), Value::Int(30)]).is_ok());
        assert!(s.validate(&[Value::str("Ann"), Value::Null]).is_ok());
        assert!(matches!(
            s.validate(&[Value::str("Ann")]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            s.validate(&[Value::str("Ann"), Value::str("thirty")]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn float_admits_int_widening() {
        let s = Schema::tp(&[("temp", DataType::Float)]);
        assert!(s.validate(&[Value::Int(3)]).is_ok());
    }

    #[test]
    fn display_includes_implicit_tp_attributes() {
        let s = Schema::tp(&[("Loc", DataType::Str)]);
        assert_eq!(s.to_string(), "(Loc STR, λ, T, p)");
    }
}
