//! Durable binary snapshots of a [`Catalog`] and delimited bulk import.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! +----------------------+ 8 bytes   magic  b"TPDBSNAP"
//! | header               | 4 bytes   format version (u32, little-endian)
//! |                      | 4 bytes   section count (u32)
//! +----------------------+
//! | section header       | 4 bytes   section tag (u32)
//! |                      | 8 bytes   payload length (u64)
//! |                      | 8 bytes   payload CRC-64 (u64)
//! | section payload      | ...       length bytes, checksummed
//! +----------------------+
//! | ... more sections    |
//! +----------------------+
//! ```
//!
//! All integers are little-endian; floats are stored as raw IEEE-754 bits so
//! snapshots round-trip bit-exactly. Three sections are written, in tag
//! order:
//!
//! 1. **symbols** — the lineage symbol dictionary (count + length-prefixed
//!    names, id = position) followed by the catalog's *variable-space bound*:
//!    one past the highest variable id referenced anywhere (dictionary,
//!    marginals or lineage formulas). Generator-built relations carry
//!    anonymous variables above the dictionary, so the bound — not the
//!    dictionary length — is what lineage decoding validates ids against.
//! 2. **marginals** — the base-tuple marginal probabilities as
//!    `(var id: u32, probability bits: u64)` pairs, sorted by id.
//! 3. **relations** — the relations sorted by name. Each relation stores its
//!    schema, then its tuples *columnar*: all values column by column, the
//!    packed interval arrays (all starts, then all ends), the probability
//!    array, and finally one postfix-encoded lineage formula per tuple.
//!
//! Saving is deterministic: the same catalog contents always produce the
//! same bytes, and `save → load → save` is byte-identical (the round-trip
//! property suite asserts this).
//!
//! # Failure modes
//!
//! Loading never panics and is **all-or-nothing**: the entire file is
//! decoded and validated into fresh structures before the catalog is
//! touched, so a corrupt snapshot leaves the catalog exactly as it was.
//! Every failure mode maps to a typed [`StorageError`] variant:
//! [`SnapshotBadMagic`](StorageError::SnapshotBadMagic),
//! [`SnapshotUnsupportedVersion`](StorageError::SnapshotUnsupportedVersion),
//! [`SnapshotChecksumMismatch`](StorageError::SnapshotChecksumMismatch),
//! [`SnapshotTruncated`](StorageError::SnapshotTruncated),
//! [`SnapshotCorrupt`](StorageError::SnapshotCorrupt),
//! [`SnapshotBadSymbol`](StorageError::SnapshotBadSymbol),
//! [`SnapshotInvalidProbability`](StorageError::SnapshotInvalidProbability)
//! and [`SnapshotIo`](StorageError::SnapshotIo).

use crate::catalog::{Catalog, MarginalMap};
use crate::error::StorageError;
use crate::relation::TpRelation;
use crate::schema::{DataType, Field, Schema};
use crate::tuple::TpTuple;
use crate::value::Value;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use tpdb_lineage::{Lineage, LineageNode, SymbolTable, VarId};
use tpdb_temporal::Interval;

/// The magic bytes every snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"TPDBSNAP";

/// The snapshot format version this build writes and reads.
pub const VERSION: u32 = 1;

const TAG_SYMBOLS: u32 = 1;
const TAG_MARGINALS: u32 = 2;
const TAG_RELATIONS: u32 = 3;

const SECTION_SYMBOLS: &str = "symbols";
const SECTION_MARGINALS: &str = "marginals";
const SECTION_RELATIONS: &str = "relations";
const SECTION_HEADER: &str = "header";

// ---------------------------------------------------------------------------
// CRC-64 (ECMA-182 polynomial, reflected — the CRC-64/XZ parametrization)
// ---------------------------------------------------------------------------

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC64_TABLE: [u64; 256] = crc64_table();

/// Derived tables for the slice-by-16 CRC: `CRC64_AHEAD[k][b]` is the CRC
/// contribution of byte `b` seen `k + 1` positions before the end of a
/// 16-byte block. Processing snapshots a block at a time instead of a byte
/// at a time makes checksum verification a small fraction of load time
/// rather than the dominant cost.
const fn crc64_ahead_tables() -> [[u64; 256]; 16] {
    let mut tables = [[0u64; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = CRC64_TABLE[i];
        let mut k = 0;
        while k < 16 {
            tables[k][i] = crc;
            crc = CRC64_TABLE[(crc & 0xFF) as usize] ^ (crc >> 8);
            k += 1;
        }
        i += 1;
    }
    tables
}

static CRC64_AHEAD: [[u64; 256]; 16] = crc64_ahead_tables();

/// The CRC-64 used to checksum snapshot sections (exposed so fault-injection
/// tests can craft payload mutations with *valid* checksums and reach the
/// validation layers behind the checksum).
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let lo = crc ^ u64::from_le_bytes(chunk[..8].try_into().unwrap_or_default());
        let hi = u64::from_le_bytes(chunk[8..].try_into().unwrap_or_default());
        let mut next = 0u64;
        let mut k = 0;
        while k < 8 {
            next ^= CRC64_AHEAD[15 - k][((lo >> (8 * k)) & 0xFF) as usize];
            next ^= CRC64_AHEAD[7 - k][((hi >> (8 * k)) & 0xFF) as usize];
            k += 1;
        }
        crc = next;
    }
    for &b in chunks.remainder() {
        let idx = ((crc ^ u64::from(b)) & 0xFF) as usize;
        crc = CRC64_TABLE[idx] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian write helpers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str, section: &str) -> Result<(), StorageError> {
    let len = u32::try_from(s.len()).map_err(|_| StorageError::SnapshotCorrupt {
        section: section.to_owned(),
        detail: format!("string of {} bytes exceeds the format limit", s.len()),
    })?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

// ---------------------------------------------------------------------------
// Checked little-endian reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StorageError> {
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(StorageError::SnapshotTruncated {
                context: format!("{} {what}", self.section),
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, StorageError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or_default())
    }

    fn u32(&mut self, what: &str) -> Result<u32, StorageError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap_or_default()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StorageError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap_or_default()))
    }

    fn i64(&mut self, what: &str) -> Result<i64, StorageError> {
        let bytes = self.take(8, what)?;
        Ok(i64::from_le_bytes(bytes.try_into().unwrap_or_default()))
    }

    fn f64_bits(&mut self, what: &str) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Bulk-reads `n` little-endian `i64`s in one bounds check (the packed
    /// interval arrays are the largest flat runs in a snapshot).
    fn i64_array(&mut self, n: usize, what: &str) -> Result<Vec<i64>, StorageError> {
        let bytes = self.take(n.saturating_mul(8), what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap_or_default()))
            .collect())
    }

    /// Bulk-reads `n` raw-bit `f64`s in one bounds check.
    fn f64_bits_array(&mut self, n: usize, what: &str) -> Result<Vec<f64>, StorageError> {
        let bytes = self.take(n.saturating_mul(8), what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap_or_default())))
            .collect())
    }

    fn str(&mut self, what: &str) -> Result<String, StorageError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StorageError::SnapshotCorrupt {
            section: self.section.to_owned(),
            detail: format!("{what} is not valid UTF-8"),
        })
    }

    /// Converts a stored element count into a `usize`, rejecting counts that
    /// could not possibly fit in the remaining payload (each element takes at
    /// least `min_element_size` bytes). This keeps a corrupted count from
    /// driving a huge allocation before the decode loop hits end-of-buffer.
    fn checked_count(
        &self,
        count: u64,
        min_element_size: usize,
        what: &str,
    ) -> Result<usize, StorageError> {
        let count = usize::try_from(count).unwrap_or(usize::MAX);
        let fits = self
            .remaining()
            .checked_div(min_element_size.max(1))
            .unwrap_or(0);
        if count > fits {
            return Err(StorageError::SnapshotCorrupt {
                section: self.section.to_owned(),
                detail: format!(
                    "{what} of {count} cannot fit in the {} remaining payload byte(s)",
                    self.remaining()
                ),
            });
        }
        Ok(count)
    }

    fn expect_end(&self) -> Result<(), StorageError> {
        if self.remaining() != 0 {
            return Err(StorageError::SnapshotCorrupt {
                section: self.section.to_owned(),
                detail: format!(
                    "{} trailing byte(s) after the section body",
                    self.remaining()
                ),
            });
        }
        Ok(())
    }
}

fn corrupt(section: &str, detail: impl Into<String>) -> StorageError {
    StorageError::SnapshotCorrupt {
        section: section.to_owned(),
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Lineage formula codec (postfix op stream)
// ---------------------------------------------------------------------------

const OP_TRUE: u8 = 0;
const OP_FALSE: u8 = 1;
const OP_VAR: u8 = 2;
const OP_NOT: u8 = 3;
const OP_AND: u8 = 4;
const OP_OR: u8 = 5;

fn encode_formula(lineage: &Lineage, ops: &mut Vec<u8>, count: &mut usize) {
    match lineage.node() {
        LineageNode::True => put_u8(ops, OP_TRUE),
        LineageNode::False => put_u8(ops, OP_FALSE),
        LineageNode::Var(v) => {
            put_u8(ops, OP_VAR);
            put_u32(ops, v.index());
        }
        LineageNode::Not(inner) => {
            encode_formula(inner, ops, count);
            put_u8(ops, OP_NOT);
        }
        LineageNode::And(children) => {
            for c in children {
                encode_formula(c, ops, count);
            }
            put_u8(ops, OP_AND);
            put_u32(ops, u32::try_from(children.len()).unwrap_or(u32::MAX));
        }
        LineageNode::Or(children) => {
            for c in children {
                encode_formula(c, ops, count);
            }
            put_u8(ops, OP_OR);
            put_u32(ops, u32::try_from(children.len()).unwrap_or(u32::MAX));
        }
    }
    *count += 1;
}

fn encode_lineage(out: &mut Vec<u8>, lineage: &Lineage) -> Result<(), StorageError> {
    // Base relations carry one atomic variable per tuple; write that shape
    // straight into the output without staging a temporary op buffer.
    if let LineageNode::Var(v) = lineage.node() {
        put_u32(out, 1);
        put_u8(out, OP_VAR);
        put_u32(out, v.index());
        return Ok(());
    }
    let mut ops = Vec::new();
    let mut count = 0usize;
    encode_formula(lineage, &mut ops, &mut count);
    let count = u32::try_from(count).map_err(|_| {
        corrupt(
            SECTION_RELATIONS,
            "lineage formula exceeds the format's op limit",
        )
    })?;
    put_u32(out, count);
    out.extend_from_slice(&ops);
    Ok(())
}

fn decode_lineage(
    r: &mut Reader<'_>,
    var_bound: u32,
    stack: &mut Vec<Lineage>,
) -> Result<Lineage, StorageError> {
    let raw_count = r.u32("lineage op count")?;
    let n_ops = r.checked_count(u64::from(raw_count), 1, "lineage op count")?;
    // Base relations store one atomic variable per tuple; decode that
    // single-op stream without touching the operand stack.
    if n_ops == 1 && matches!(r.buf.get(r.pos), Some(&OP_VAR)) {
        r.pos += 1;
        let id = r.u32("lineage var id")?;
        if id >= var_bound {
            return Err(StorageError::SnapshotBadSymbol {
                id,
                bound: var_bound,
            });
        }
        return Ok(Lineage::var(VarId(id)));
    }
    stack.clear();
    for _ in 0..n_ops {
        match r.u8("lineage op")? {
            OP_TRUE => stack.push(Lineage::tru()),
            OP_FALSE => stack.push(Lineage::fls()),
            OP_VAR => {
                let id = r.u32("lineage var id")?;
                if id >= var_bound {
                    return Err(StorageError::SnapshotBadSymbol {
                        id,
                        bound: var_bound,
                    });
                }
                stack.push(Lineage::var(VarId(id)));
            }
            OP_NOT => {
                let inner = stack
                    .pop()
                    .ok_or_else(|| corrupt(SECTION_RELATIONS, "NOT op on an empty stack"))?;
                stack.push(Lineage::not(inner));
            }
            op @ (OP_AND | OP_OR) => {
                let k = r.u32("lineage operand count")? as usize;
                if k > stack.len() {
                    return Err(corrupt(
                        SECTION_RELATIONS,
                        format!(
                            "connective needs {k} operand(s) but only {} are on the stack",
                            stack.len()
                        ),
                    ));
                }
                let children = stack.split_off(stack.len() - k);
                stack.push(if op == OP_AND {
                    Lineage::and(children)
                } else {
                    Lineage::or(children)
                });
            }
            other => {
                return Err(corrupt(
                    SECTION_RELATIONS,
                    format!("unknown lineage op tag {other}"),
                ))
            }
        }
    }
    match (stack.pop(), stack.is_empty()) {
        (Some(lineage), true) => Ok(lineage),
        (Some(_), false) => Err(corrupt(
            SECTION_RELATIONS,
            "lineage op stream left extra operands on the stack",
        )),
        (None, _) => Err(corrupt(SECTION_RELATIONS, "empty lineage op stream")),
    }
}

fn max_var_in(lineage: &Lineage, max: &mut u32) {
    match lineage.node() {
        LineageNode::True | LineageNode::False => {}
        LineageNode::Var(v) => *max = (*max).max(v.index().saturating_add(1)),
        LineageNode::Not(inner) => max_var_in(inner, max),
        LineageNode::And(children) | LineageNode::Or(children) => {
            for c in children {
                max_var_in(c, max);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;

fn encode_value(out: &mut Vec<u8>, value: &Value) -> Result<(), StorageError> {
    match value {
        Value::Null => put_u8(out, VAL_NULL),
        Value::Bool(b) => {
            put_u8(out, VAL_BOOL);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, VAL_INT);
            put_i64(out, *i);
        }
        Value::Float(x) => {
            put_u8(out, VAL_FLOAT);
            put_f64_bits(out, *x);
        }
        Value::Str(s) => {
            put_u8(out, VAL_STR);
            put_str(out, s, SECTION_RELATIONS)?;
        }
    }
    Ok(())
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value, StorageError> {
    Ok(match r.u8("value tag")? {
        VAL_NULL => Value::Null,
        VAL_BOOL => match r.u8("bool value")? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            other => {
                return Err(corrupt(
                    SECTION_RELATIONS,
                    format!("bool value byte {other} is neither 0 nor 1"),
                ))
            }
        },
        VAL_INT => Value::Int(r.i64("int value")?),
        VAL_FLOAT => Value::Float(r.f64_bits("float value")?),
        VAL_STR => Value::str(&r.str("string value")?),
        other => {
            return Err(corrupt(
                SECTION_RELATIONS,
                format!("unknown value tag {other}"),
            ))
        }
    })
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Bool),
        1 => Some(DataType::Int),
        2 => Some(DataType::Float),
        3 => Some(DataType::Str),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Section encoders
// ---------------------------------------------------------------------------

fn encode_symbols(symbols: &SymbolTable, var_bound: u32) -> Result<Vec<u8>, StorageError> {
    let mut out = Vec::new();
    let count = u32::try_from(symbols.len()).map_err(|_| {
        corrupt(
            SECTION_SYMBOLS,
            "symbol dictionary exceeds the format limit",
        )
    })?;
    put_u32(&mut out, count);
    for (_, name) in symbols.iter() {
        put_str(&mut out, name, SECTION_SYMBOLS)?;
    }
    put_u32(&mut out, var_bound);
    Ok(out)
}

fn encode_marginals(marginals: &MarginalMap) -> Result<Vec<u8>, StorageError> {
    let mut pairs: Vec<(u32, f64)> = marginals.iter().map(|(v, &p)| (v.index(), p)).collect();
    pairs.sort_by_key(|&(v, _)| v);
    let mut out = Vec::new();
    let count = u32::try_from(pairs.len())
        .map_err(|_| corrupt(SECTION_MARGINALS, "marginal table exceeds the format limit"))?;
    put_u32(&mut out, count);
    for (var, prob) in pairs {
        put_u32(&mut out, var);
        put_f64_bits(&mut out, prob);
    }
    Ok(out)
}

fn encode_relations(relations: &[Arc<TpRelation>]) -> Result<Vec<u8>, StorageError> {
    let mut out = Vec::new();
    let count = u32::try_from(relations.len())
        .map_err(|_| corrupt(SECTION_RELATIONS, "relation count exceeds the format limit"))?;
    put_u32(&mut out, count);
    for relation in relations {
        put_str(&mut out, relation.name(), SECTION_RELATIONS)?;
        let schema = relation.schema();
        let arity = u32::try_from(schema.arity())
            .map_err(|_| corrupt(SECTION_RELATIONS, "schema arity exceeds the format limit"))?;
        put_u32(&mut out, arity);
        for field in schema.fields() {
            put_str(&mut out, &field.name, SECTION_RELATIONS)?;
            put_u8(&mut out, dtype_tag(field.dtype));
        }
        put_u64(&mut out, relation.len() as u64);
        // Rough per-tuple floor (value tags + interval + probability + a
        // single-var lineage) so the big column loops rarely reallocate.
        out.reserve(relation.len().saturating_mul(schema.arity() + 33));
        // values, column-major
        for col in 0..schema.arity() {
            for tuple in relation.iter() {
                encode_value(&mut out, tuple.fact(col))?;
            }
        }
        // packed interval arrays: all starts, then all ends
        for tuple in relation.iter() {
            put_i64(&mut out, tuple.interval().start());
        }
        for tuple in relation.iter() {
            put_i64(&mut out, tuple.interval().end());
        }
        // probabilities
        for tuple in relation.iter() {
            put_f64_bits(&mut out, tuple.probability());
        }
        // lineages
        for tuple in relation.iter() {
            encode_lineage(&mut out, tuple.lineage())?;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Section decoders
// ---------------------------------------------------------------------------

fn decode_symbols(payload: &[u8]) -> Result<(SymbolTable, u32), StorageError> {
    let mut r = Reader::new(payload, SECTION_SYMBOLS);
    let raw = r.u32("symbol count")?;
    let count = r.checked_count(u64::from(raw), 4, "symbol count")?;
    let mut names = Vec::with_capacity(count);
    for _ in 0..count {
        names.push(r.str("symbol name")?);
    }
    let dictionary_len = names.len();
    let var_bound = r.u32("variable-space bound")?;
    r.expect_end()?;
    if (var_bound as usize) < dictionary_len {
        return Err(corrupt(
            SECTION_SYMBOLS,
            format!(
                "variable-space bound {var_bound} is smaller than the dictionary \
                 ({dictionary_len} entries)"
            ),
        ));
    }
    let symbols =
        SymbolTable::from_names(names).map_err(|e| corrupt(SECTION_SYMBOLS, e.to_string()))?;
    Ok((symbols, var_bound))
}

fn decode_marginals(payload: &[u8], var_bound: u32) -> Result<MarginalMap, StorageError> {
    let mut r = Reader::new(payload, SECTION_MARGINALS);
    let raw = r.u32("marginal count")?;
    let count = r.checked_count(u64::from(raw), 12, "marginal count")?;
    let mut marginals = MarginalMap::with_capacity_and_hasher(count, Default::default());
    let mut previous: Option<u32> = None;
    for _ in 0..count {
        let var = r.u32("marginal var id")?;
        let prob = r.f64_bits("marginal probability")?;
        if var >= var_bound {
            return Err(StorageError::SnapshotBadSymbol {
                id: var,
                bound: var_bound,
            });
        }
        if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
            return Err(StorageError::SnapshotInvalidProbability(prob));
        }
        if previous.is_some_and(|p| p >= var) {
            return Err(corrupt(
                SECTION_MARGINALS,
                format!("marginal var ids are not strictly increasing at id {var}"),
            ));
        }
        previous = Some(var);
        marginals.insert(VarId(var), prob);
    }
    r.expect_end()?;
    Ok(marginals)
}

fn decode_relations(payload: &[u8], var_bound: u32) -> Result<Vec<TpRelation>, StorageError> {
    let mut r = Reader::new(payload, SECTION_RELATIONS);
    let raw = r.u32("relation count")?;
    let count = r.checked_count(u64::from(raw), 4, "relation count")?;
    let mut relations = Vec::with_capacity(count);
    let mut seen_names: Vec<String> = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str("relation name")?;
        if seen_names.contains(&name) {
            return Err(corrupt(
                SECTION_RELATIONS,
                format!("duplicate relation name `{name}`"),
            ));
        }
        seen_names.push(name.clone());
        let raw_arity = r.u32("schema arity")?;
        let arity = r.checked_count(u64::from(raw_arity), 5, "schema arity")?;
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            let field_name = r.str("field name")?;
            let tag = r.u8("field type tag")?;
            let dtype = dtype_from_tag(tag).ok_or_else(|| {
                corrupt(SECTION_RELATIONS, format!("unknown field type tag {tag}"))
            })?;
            fields.push(Field::new(&field_name, dtype));
        }
        let schema = Schema::new(fields);
        // Every tuple needs at least one value tag per column plus the
        // interval (16), probability (8) and lineage count prefix (4+1).
        let min_tuple = arity.saturating_add(29);
        let raw_tuples = r.u64("tuple count")?;
        let n_tuples = r.checked_count(raw_tuples, min_tuple, "tuple count")?;
        let mut rows: Vec<Vec<Value>> = (0..n_tuples).map(|_| Vec::with_capacity(arity)).collect();
        for field in schema.fields() {
            for row in &mut rows {
                let value = decode_value(&mut r)?;
                if !field.dtype.admits(&value) {
                    return Err(corrupt(
                        SECTION_RELATIONS,
                        format!(
                            "value {value:?} does not fit column `{}` of `{name}`",
                            field.name
                        ),
                    ));
                }
                row.push(value);
            }
        }
        let starts = r.i64_array(n_tuples, "interval start")?;
        let ends = r.i64_array(n_tuples, "interval end")?;
        let mut intervals = Vec::with_capacity(n_tuples);
        for (start, end) in starts.into_iter().zip(ends) {
            let interval = Interval::try_new(start, end)
                .map_err(|e| corrupt(SECTION_RELATIONS, e.to_string()))?;
            intervals.push(interval);
        }
        let probabilities = r.f64_bits_array(n_tuples, "tuple probability")?;
        for &prob in &probabilities {
            if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
                return Err(StorageError::SnapshotInvalidProbability(prob));
            }
        }
        let mut relation = TpRelation::new(&name, schema);
        relation.reserve(n_tuples);
        let mut stack: Vec<Lineage> = Vec::new();
        let tuples = rows.into_iter().zip(intervals).zip(probabilities);
        for ((facts, interval), probability) in tuples {
            let lineage = decode_lineage(&mut r, var_bound, &mut stack)?;
            // Facts, interval and probability were all validated above, so the
            // tuple can bypass `push`'s re-validation.
            relation.push_unchecked(TpTuple::new(facts, lineage, interval, probability));
        }
        relations.push(relation);
    }
    r.expect_end()?;
    Ok(relations)
}

// ---------------------------------------------------------------------------
// Whole-snapshot encode/decode
// ---------------------------------------------------------------------------

fn append_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    put_u64(out, crc64(payload));
    out.extend_from_slice(payload);
}

struct DecodedSnapshot {
    symbols: SymbolTable,
    marginals: MarginalMap,
    relations: Vec<TpRelation>,
}

fn decode_snapshot(bytes: &[u8]) -> Result<DecodedSnapshot, StorageError> {
    let mut r = Reader::new(bytes, SECTION_HEADER);
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(StorageError::SnapshotBadMagic);
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(StorageError::SnapshotUnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let raw_sections = r.u32("section count")?;
    let n_sections = r.checked_count(u64::from(raw_sections), 20, "section count")?;
    let mut sections: HashMap<u32, &[u8]> = HashMap::with_capacity(n_sections);
    for _ in 0..n_sections {
        let tag = r.u32("section tag")?;
        let section_name = match tag {
            TAG_SYMBOLS => SECTION_SYMBOLS,
            TAG_MARGINALS => SECTION_MARGINALS,
            TAG_RELATIONS => SECTION_RELATIONS,
            other => {
                return Err(corrupt(
                    SECTION_HEADER,
                    format!("unknown section tag {other}"),
                ))
            }
        };
        let len = r.u64("section length")?;
        let len = usize::try_from(len).map_err(|_| {
            corrupt(
                SECTION_HEADER,
                format!("section `{section_name}` declares an impossible length {len}"),
            )
        })?;
        let expected = r.u64("section checksum")?;
        let payload = r.take(len, "section payload")?;
        let got = crc64(payload);
        if got != expected {
            return Err(StorageError::SnapshotChecksumMismatch {
                section: section_name.to_owned(),
                expected,
                got,
            });
        }
        if sections.insert(tag, payload).is_some() {
            return Err(corrupt(
                SECTION_HEADER,
                format!("duplicate section `{section_name}`"),
            ));
        }
    }
    if r.remaining() != 0 {
        return Err(corrupt(
            SECTION_HEADER,
            format!("{} trailing byte(s) after the last section", r.remaining()),
        ));
    }
    let missing = |name: &str| corrupt(SECTION_HEADER, format!("missing section `{name}`"));
    let symbols_payload = sections
        .get(&TAG_SYMBOLS)
        .ok_or_else(|| missing(SECTION_SYMBOLS))?;
    let marginals_payload = sections
        .get(&TAG_MARGINALS)
        .ok_or_else(|| missing(SECTION_MARGINALS))?;
    let relations_payload = sections
        .get(&TAG_RELATIONS)
        .ok_or_else(|| missing(SECTION_RELATIONS))?;
    let (symbols, var_bound) = decode_symbols(symbols_payload)?;
    let marginals = decode_marginals(marginals_payload, var_bound)?;
    let relations = decode_relations(relations_payload, var_bound)?;
    Ok(DecodedSnapshot {
        symbols,
        marginals,
        relations,
    })
}

impl Catalog {
    /// Serializes the whole catalog — symbol dictionary, marginal
    /// probabilities and every relation — into the versioned, checksummed
    /// snapshot byte format. Deterministic: identical catalog contents
    /// produce identical bytes.
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>, StorageError> {
        let mut relations = Vec::new();
        for name in self.relation_names() {
            relations.push(self.relation(&name)?);
        }
        let mut var_bound = u32::try_from(self.symbols().len()).map_err(|_| {
            corrupt(
                SECTION_SYMBOLS,
                "symbol dictionary exceeds the format limit",
            )
        })?;
        for var in self.marginals().keys() {
            var_bound = var_bound.max(var.index().saturating_add(1));
        }
        for relation in &relations {
            for tuple in relation.iter() {
                max_var_in(tuple.lineage(), &mut var_bound);
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, 3);
        append_section(
            &mut out,
            TAG_SYMBOLS,
            &encode_symbols(self.symbols(), var_bound)?,
        );
        append_section(
            &mut out,
            TAG_MARGINALS,
            &encode_marginals(self.marginals())?,
        );
        append_section(&mut out, TAG_RELATIONS, &encode_relations(&relations)?);
        Ok(out)
    }

    /// Replaces the catalog's contents with a decoded snapshot. The bytes
    /// are fully decoded and validated first, so on error the catalog is
    /// untouched (all-or-nothing), and the schema epoch is bumped exactly
    /// once on success.
    pub fn load_snapshot_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let decoded = decode_snapshot(bytes)?;
        self.replace_contents(decoded.symbols, decoded.marginals, decoded.relations)
    }

    /// Saves the catalog to a snapshot file at `path`.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), StorageError> {
        let path = path.as_ref();
        let bytes = self.to_snapshot_bytes()?;
        std::fs::write(path, bytes).map_err(|e| StorageError::SnapshotIo {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Loads a snapshot file at `path`, replacing the catalog's contents.
    /// All-or-nothing: a corrupt or unreadable snapshot leaves the catalog
    /// unchanged.
    pub fn load_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), StorageError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StorageError::SnapshotIo {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.load_snapshot_bytes(&bytes)
    }

    /// Bulk-imports a delimited text table (CSV with `delimiter: ','`, TSV
    /// with `'\t'`) as a new base relation named `name`.
    ///
    /// Each record carries the fact attributes of `schema` followed by the
    /// interval start, interval end and probability. Fields may be quoted
    /// with `"` (doubled quotes escape, delimiters and newlines are literal
    /// inside quotes); CRLF line endings are accepted; an empty unquoted
    /// field is `NULL`. Every malformed record — wrong field count, bad
    /// value, malformed interval or probability, duplicate key (same fact
    /// valid over overlapping intervals) — is reported with its 1-based line
    /// number via [`StorageError::ParseError`].
    pub fn import_delimited(
        &mut self,
        name: &str,
        schema: Schema,
        delimiter: char,
        text: &str,
    ) -> Result<Arc<TpRelation>, StorageError> {
        let records = parse_delimited_records(text, delimiter)?;
        let arity = schema.arity();
        let mut rows: Vec<(usize, Vec<Value>, Interval, f64)> = Vec::with_capacity(records.len());
        for (line, fields) in records {
            if fields.len() != arity + 3 {
                return Err(StorageError::ParseError {
                    line,
                    message: format!("expected {} field(s), got {}", arity + 3, fields.len()),
                });
            }
            let mut facts = Vec::with_capacity(arity);
            for (field, spec) in fields.iter().zip(schema.fields()) {
                facts.push(delimited_value(field, spec, line)?);
            }
            let time = |field: &CsvField, what: &str| -> Result<i64, StorageError> {
                field
                    .text
                    .parse::<i64>()
                    .map_err(|_| StorageError::ParseError {
                        line,
                        message: format!("invalid interval {what}: `{}`", field.text),
                    })
            };
            let (start_f, end_f, prob_f) = match fields.get(arity..) {
                Some([s, e, p]) => (s, e, p),
                _ => {
                    return Err(StorageError::ParseError {
                        line,
                        message: "missing interval/probability fields".to_owned(),
                    })
                }
            };
            let start = time(start_f, "start")?;
            let end = time(end_f, "end")?;
            let interval = Interval::try_new(start, end).map_err(|e| StorageError::ParseError {
                line,
                message: e.to_string(),
            })?;
            let probability: f64 = prob_f.text.parse().map_err(|_| StorageError::ParseError {
                line,
                message: format!("invalid probability: `{}`", prob_f.text),
            })?;
            if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                return Err(StorageError::ParseError {
                    line,
                    message: format!(
                        "invalid probability {probability}: must be finite and within [0, 1]"
                    ),
                });
            }
            rows.push((line, facts, interval, probability));
        }
        // Duplicate-key check (the TP duplicate-free constraint): for every
        // fact, validity intervals must not overlap. Reported against the
        // later of the two offending lines.
        let mut by_fact: HashMap<&[Value], Vec<(Interval, usize)>> = HashMap::new();
        for (line, facts, interval, _) in &rows {
            by_fact
                .entry(facts.as_slice())
                .or_default()
                .push((*interval, *line));
        }
        for intervals in by_fact.values_mut() {
            intervals.sort_by_key(|(i, _)| (i.start(), i.end()));
            for pair in intervals.windows(2) {
                if let [(first, _), (second, second_line)] = pair {
                    if first.overlaps(second) {
                        return Err(StorageError::ParseError {
                            line: *second_line,
                            message: format!(
                                "duplicate key: fact already valid over {first}, which overlaps \
                                 {second}"
                            ),
                        });
                    }
                }
            }
        }
        let mut builder = self.create_relation(name, schema)?;
        for (_, facts, interval, probability) in rows {
            builder.push(facts, interval, probability);
        }
        builder.try_finish()
    }

    /// [`Catalog::import_delimited`] reading the table from a file.
    pub fn import_delimited_path(
        &mut self,
        name: &str,
        schema: Schema,
        delimiter: char,
        path: impl AsRef<Path>,
    ) -> Result<Arc<TpRelation>, StorageError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| StorageError::SnapshotIo {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.import_delimited(name, schema, delimiter, &text)
    }
}

// ---------------------------------------------------------------------------
// Delimited-text record parsing
// ---------------------------------------------------------------------------

/// One parsed field: its unquoted text and whether it was quoted (an empty
/// unquoted field is `NULL`; an empty quoted field is the empty string).
struct CsvField {
    text: String,
    quoted: bool,
}

fn delimited_value(field: &CsvField, spec: &Field, line: usize) -> Result<Value, StorageError> {
    if field.text.is_empty() && !field.quoted {
        return Ok(Value::Null);
    }
    let err = || StorageError::ParseError {
        line,
        message: format!(
            "invalid {} in column {}: `{}`",
            spec.dtype, spec.name, field.text
        ),
    };
    Ok(match spec.dtype {
        DataType::Bool => Value::Bool(field.text.parse::<bool>().map_err(|_| err())?),
        DataType::Int => Value::Int(field.text.parse::<i64>().map_err(|_| err())?),
        DataType::Float => Value::Float(field.text.parse::<f64>().map_err(|_| err())?),
        DataType::Str => Value::str(&field.text),
    })
}

/// Splits delimited text into records of fields, tracking the 1-based line
/// number each record starts on. Handles quoting (`"`, doubled to escape),
/// delimiters and newlines inside quotes, CRLF endings, and skips blank
/// lines.
fn parse_delimited_records(
    text: &str,
    delimiter: char,
) -> Result<Vec<(usize, Vec<CsvField>)>, StorageError> {
    let mut records = Vec::new();
    let mut fields: Vec<CsvField> = Vec::new();
    let mut cur = String::new();
    let mut cur_quoted = false;
    let mut in_quotes = false;
    let mut any_content = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    let mut chars = text.chars().peekable();
    loop {
        let c = chars.next();
        // Record terminators: newline outside quotes, or end of input.
        let ends_record = match c {
            None => true,
            Some('\n') if !in_quotes => true,
            Some('\r') if !in_quotes && chars.peek() == Some(&'\n') => {
                chars.next();
                true
            }
            _ => false,
        };
        if ends_record {
            if in_quotes {
                return Err(StorageError::ParseError {
                    line: record_line,
                    message: "unterminated quoted field".to_owned(),
                });
            }
            if any_content || !fields.is_empty() {
                fields.push(CsvField {
                    text: std::mem::take(&mut cur),
                    quoted: cur_quoted,
                });
                records.push((record_line, std::mem::take(&mut fields)));
            }
            cur_quoted = false;
            any_content = false;
            if c.is_none() {
                break;
            }
            line += 1;
            record_line = line;
            continue;
        }
        let Some(c) = c else { break };
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                if c == '\n' {
                    line += 1;
                }
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() && !cur_quoted {
            in_quotes = true;
            cur_quoted = true;
            any_content = true;
        } else if c == delimiter {
            fields.push(CsvField {
                text: std::mem::take(&mut cur),
                quoted: cur_quoted,
            });
            cur_quoted = false;
            any_content = true;
        } else {
            cur.push(c);
            any_content = true;
        }
    }
    Ok(records)
}

#[cfg(test)]
// Tests assert bit-exact values on purpose (reproducibility contract).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]);
        let mut b = c.create_relation("a", schema).unwrap();
        b.push(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Interval::new(2, 8),
            0.7,
        )
        .push(
            vec![Value::str("Jim"), Value::str("WEN")],
            Interval::new(7, 10),
            0.8,
        );
        let _ = b.finish();
        let schema = Schema::tp(&[("Hotel", DataType::Str), ("Loc", DataType::Str)]);
        let mut b = c.create_relation("b", schema).unwrap();
        b.push(
            vec![Value::str("H1"), Value::str("ZAK")],
            Interval::new(4, 6),
            0.9,
        );
        let _ = b.finish();
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample_catalog();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut loaded = Catalog::new();
        loaded.load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(loaded.relation_names(), c.relation_names());
        for name in c.relation_names() {
            assert_eq!(
                *loaded.relation(&name).unwrap(),
                *c.relation(&name).unwrap()
            );
        }
        assert_eq!(loaded.symbols().len(), c.symbols().len());
        let a1 = loaded.symbols().lookup("a1").unwrap();
        assert_eq!(loaded.probability_of(a1), Some(0.7));
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let c = sample_catalog();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut loaded = Catalog::new();
        loaded.load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(loaded.to_snapshot_bytes().unwrap(), bytes);
    }

    #[test]
    fn empty_catalog_roundtrips() {
        let c = Catalog::new();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut loaded = sample_catalog();
        loaded.load_snapshot_bytes(&bytes).unwrap();
        assert!(loaded.relation_names().is_empty());
        assert!(loaded.symbols().is_empty());
    }

    #[test]
    fn load_bumps_the_schema_epoch_once() {
        let c = sample_catalog();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut target = Catalog::new();
        let before = target.schema_epoch();
        target.load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(target.schema_epoch(), before + 1);
    }

    #[test]
    fn compound_lineages_roundtrip() {
        let mut c = Catalog::new();
        let v0 = c.symbols_mut().intern("a1");
        let v1 = c.symbols_mut().intern("b1");
        let lineage = Lineage::and2(Lineage::var(v0), Lineage::not(Lineage::var(v1)));
        let mut r = TpRelation::new("joined", Schema::tp(&[("K", DataType::Int)]));
        r.push(TpTuple::new(
            vec![Value::Int(1)],
            lineage.clone(),
            Interval::new(0, 5),
            0.63,
        ))
        .unwrap();
        c.register(r).unwrap();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut loaded = Catalog::new();
        loaded.load_snapshot_bytes(&bytes).unwrap();
        let joined = loaded.relation("joined").unwrap();
        assert_eq!(joined.tuple(0).lineage(), &lineage);
    }

    #[test]
    fn anonymous_generator_variables_roundtrip() {
        // Generator relations reference var ids far above the symbol
        // dictionary; the stamped variable-space bound must cover them.
        let mut c = Catalog::new();
        let v = VarId(100_000_000);
        let mut r = TpRelation::new("g", Schema::tp(&[("K", DataType::Int)]));
        r.push(TpTuple::new(
            vec![Value::Int(7)],
            Lineage::var(v),
            Interval::new(1, 3),
            0.5,
        ))
        .unwrap();
        c.register(r).unwrap();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut loaded = Catalog::new();
        loaded.load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(loaded.probability_of(v), Some(0.5));
        assert_eq!(
            loaded.relation("g").unwrap().tuple(0).lineage(),
            &Lineage::var(v)
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_catalog().to_snapshot_bytes().unwrap();
        bytes[0] = b'X';
        let mut c = Catalog::new();
        assert_eq!(
            c.load_snapshot_bytes(&bytes),
            Err(StorageError::SnapshotBadMagic)
        );
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = sample_catalog().to_snapshot_bytes().unwrap();
        bytes[8] = 99;
        let mut c = Catalog::new();
        assert_eq!(
            c.load_snapshot_bytes(&bytes),
            Err(StorageError::SnapshotUnsupportedVersion {
                found: 99,
                supported: VERSION
            })
        );
    }

    #[test]
    fn flipped_payload_byte_fails_its_checksum() {
        let mut bytes = sample_catalog().to_snapshot_bytes().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut c = Catalog::new();
        assert!(matches!(
            c.load_snapshot_bytes(&bytes),
            Err(StorageError::SnapshotChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_and_leaves_catalog_unchanged() {
        let bytes = sample_catalog().to_snapshot_bytes().unwrap();
        let mut c = sample_catalog();
        let epoch = c.schema_epoch();
        for cut in [3, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = c.load_snapshot_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StorageError::SnapshotTruncated { .. }
                        | StorageError::SnapshotChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
        assert_eq!(c.schema_epoch(), epoch);
        assert_eq!(c.relation_names(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let mut c = Catalog::new();
        let err = c
            .load_snapshot("/nonexistent/tpdb-snapshot-test.snap")
            .unwrap_err();
        assert!(matches!(err, StorageError::SnapshotIo { .. }), "{err:?}");
    }

    #[test]
    fn crc64_matches_the_xz_check_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn import_csv_with_quoting_crlf_and_nulls() {
        let mut c = Catalog::new();
        let schema = Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]);
        let text =
            "\"Ann, Mary\",ZAK,2,8,0.7\r\nJim,,7,10,0.8\n\"He said \"\"hi\"\"\",WEN,1,2,0.5\n";
        let rel = c.import_delimited("a", schema, ',', text).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.tuple(0).fact(0), &Value::str("Ann, Mary"));
        assert!(rel.tuple(1).fact(1).is_null());
        assert_eq!(rel.tuple(2).fact(0), &Value::str("He said \"hi\""));
        assert_eq!(rel.tuple(0).interval(), Interval::new(2, 8));
        // lineage vars a1..a3 were interned with their probabilities
        let a2 = c.symbols().lookup("a2").unwrap();
        assert_eq!(c.probability_of(a2), Some(0.8));
    }

    #[test]
    fn import_tsv() {
        let mut c = Catalog::new();
        let schema = Schema::tp(&[("K", DataType::Int)]);
        let rel = c
            .import_delimited("t", schema, '\t', "1\t0\t5\t0.5\n2\t1\t4\t0.25\n")
            .unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.tuple(1).fact(0), &Value::Int(2));
    }

    #[test]
    fn import_errors_carry_line_numbers() {
        let schema = || Schema::tp(&[("K", DataType::Int)]);
        let cases: &[(&str, usize, &str)] = &[
            ("1,0,5,0.5\nx,0,5,0.5\n", 2, "invalid INT"),
            ("1,0,5,0.5\n2,0,5\n", 2, "expected 4 field(s)"),
            ("1,9,5,0.5\n", 1, "interval"),
            ("1,0,5,1.5\n", 1, "probability"),
            ("1,0,5,nan\n", 1, "probability"),
            ("1,0,notanint,0.5\n", 1, "invalid interval end"),
            ("1,0,5,0.5\n\"unterminated,0,5,0.5\n", 2, "unterminated"),
            ("1,0,5,0.5\n1,4,9,0.5\n", 2, "duplicate key"),
        ];
        for (text, line, needle) in cases {
            let mut c = Catalog::new();
            match c.import_delimited("t", schema(), ',', text) {
                Err(StorageError::ParseError { line: l, message }) => {
                    assert_eq!(l, *line, "{text:?}: {message}");
                    assert!(message.contains(needle), "{text:?}: {message}");
                }
                other => panic!("{text:?}: expected ParseError, got {other:?}"),
            }
        }
    }

    #[test]
    fn import_skips_blank_lines_and_counts_them() {
        let mut c = Catalog::new();
        let schema = Schema::tp(&[("K", DataType::Int)]);
        let text = "1,0,5,0.5\n\n\nbad,0,5,0.5\n";
        match c.import_delimited("t", schema, ',', text) {
            Err(StorageError::ParseError { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected ParseError, got {other:?}"),
        }
    }

    #[test]
    fn imported_relation_roundtrips_through_a_snapshot() {
        let mut c = Catalog::new();
        let schema = Schema::tp(&[("Name", DataType::Str)]);
        let _ = c
            .import_delimited("a", schema, ',', "Ann,2,8,0.7\nJim,9,12,0.8\n")
            .unwrap();
        let bytes = c.to_snapshot_bytes().unwrap();
        let mut loaded = Catalog::new();
        loaded.load_snapshot_bytes(&bytes).unwrap();
        assert_eq!(*loaded.relation("a").unwrap(), *c.relation("a").unwrap());
        assert_eq!(loaded.to_snapshot_bytes().unwrap(), bytes);
    }
}
