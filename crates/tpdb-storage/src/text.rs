//! Plain-text import/export of TP relations.
//!
//! The format is a simple pipe-separated text table, one tuple per line:
//!
//! ```text
//! # name: a
//! # columns: Name:STR|Loc:STR
//! Ann|ZAK|2|8|0.7
//! Jim|WEN|7|10|0.8
//! ```
//!
//! The last three fields of every data line are the interval start, the
//! interval end and the probability. Lineages are re-created as fresh atomic
//! variables on import (the format stores base relations, not derived
//! results), mirroring how the paper's datasets are loaded into PostgreSQL
//! tables before querying.

use crate::catalog::Catalog;
use crate::error::StorageError;
use crate::relation::TpRelation;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use std::sync::Arc;
use tpdb_temporal::Interval;

/// Serializes a relation (schema header plus one line per tuple).
#[must_use]
pub fn relation_to_text(relation: &TpRelation) -> String {
    let mut out = String::new();
    out.push_str(&format!("# name: {}\n", relation.name()));
    let cols: Vec<String> = relation
        .schema()
        .fields()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.dtype))
        .collect();
    out.push_str(&format!("# columns: {}\n", cols.join("|")));
    for t in relation.iter() {
        let facts: Vec<String> = t.facts().iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "{}|{}|{}|{}\n",
            facts.join("|"),
            t.interval().start(),
            t.interval().end(),
            t.probability()
        ));
    }
    out
}

fn parse_dtype(s: &str) -> Option<DataType> {
    match s {
        "BOOL" => Some(DataType::Bool),
        "INT" => Some(DataType::Int),
        "FLOAT" => Some(DataType::Float),
        "STR" => Some(DataType::Str),
        _ => None,
    }
}

fn parse_value(s: &str, dtype: DataType, line: usize) -> Result<Value, StorageError> {
    if s == "-" {
        return Ok(Value::Null);
    }
    let err = |message: String| StorageError::ParseError { line, message };
    Ok(match dtype {
        DataType::Bool => Value::Bool(
            s.parse::<bool>()
                .map_err(|_| err(format!("invalid bool: {s}")))?,
        ),
        DataType::Int => Value::Int(
            s.parse::<i64>()
                .map_err(|_| err(format!("invalid int: {s}")))?,
        ),
        DataType::Float => Value::Float(
            s.parse::<f64>()
                .map_err(|_| err(format!("invalid float: {s}")))?,
        ),
        DataType::Str => Value::str(s),
    })
}

/// Parses a relation from its textual form and registers it (with fresh
/// atomic lineages) in `catalog`.
pub fn relation_from_text(
    catalog: &mut Catalog,
    text: &str,
) -> Result<Arc<TpRelation>, StorageError> {
    let mut name: Option<String> = None;
    let mut schema: Option<Schema> = None;
    let mut rows: Vec<(Vec<Value>, Interval, f64)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# name:") {
            name = Some(rest.trim().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# columns:") {
            let mut fields = Vec::new();
            for col in rest.trim().split('|') {
                let (n, t) = col.split_once(':').ok_or(StorageError::ParseError {
                    line: lineno,
                    message: format!("invalid column spec: {col}"),
                })?;
                let dtype = parse_dtype(t.trim()).ok_or(StorageError::ParseError {
                    line: lineno,
                    message: format!("unknown type: {t}"),
                })?;
                fields.push(Field::new(n.trim(), dtype));
            }
            schema = Some(Schema::new(fields));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let schema_ref = schema.as_ref().ok_or(StorageError::ParseError {
            line: lineno,
            message: "data line before '# columns:' header".to_owned(),
        })?;
        let parts: Vec<&str> = line.split('|').collect();
        if parts.len() != schema_ref.arity() + 3 {
            return Err(StorageError::ParseError {
                line: lineno,
                message: format!(
                    "expected {} fields, got {}",
                    schema_ref.arity() + 3,
                    parts.len()
                ),
            });
        }
        let mut facts = Vec::with_capacity(schema_ref.arity());
        for (i, field) in schema_ref.fields().iter().enumerate() {
            facts.push(parse_value(parts[i], field.dtype, lineno)?);
        }
        let n = parts.len();
        let start: i64 = parts[n - 3].parse().map_err(|_| StorageError::ParseError {
            line: lineno,
            message: format!("invalid interval start: {}", parts[n - 3]),
        })?;
        let end: i64 = parts[n - 2].parse().map_err(|_| StorageError::ParseError {
            line: lineno,
            message: format!("invalid interval end: {}", parts[n - 2]),
        })?;
        let prob: f64 = parts[n - 1].parse().map_err(|_| StorageError::ParseError {
            line: lineno,
            message: format!("invalid probability: {}", parts[n - 1]),
        })?;
        let interval = Interval::try_new(start, end).map_err(|e| StorageError::ParseError {
            line: lineno,
            message: e.to_string(),
        })?;
        rows.push((facts, interval, prob));
    }

    let name = name.ok_or(StorageError::ParseError {
        line: 0,
        message: "missing '# name:' header".to_owned(),
    })?;
    let schema = schema.ok_or(StorageError::ParseError {
        line: 0,
        message: "missing '# columns:' header".to_owned(),
    })?;

    let mut builder = catalog.create_relation(&name, schema)?;
    for (facts, interval, prob) in rows {
        builder.push(facts, interval, prob);
    }
    builder.try_finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# name: a
# columns: Name:STR|Loc:STR
Ann|ZAK|2|8|0.7
Jim|WEN|7|10|0.8
";

    #[test]
    fn roundtrip_import_export() {
        let mut c = Catalog::new();
        let rel = relation_from_text(&mut c, SAMPLE).unwrap();
        assert_eq!(rel.name(), "a");
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.tuple(0).fact(1), &Value::str("ZAK"));
        assert_eq!(rel.tuple(1).interval(), Interval::new(7, 10));

        let text = relation_to_text(&rel);
        let mut c2 = Catalog::new();
        let rel2 = relation_from_text(&mut c2, &text).unwrap();
        assert_eq!(rel2.len(), rel.len());
        for (t1, t2) in rel.iter().zip(rel2.iter()) {
            assert_eq!(t1.facts(), t2.facts());
            assert_eq!(t1.interval(), t2.interval());
            assert!((t1.probability() - t2.probability()).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_headers_are_errors() {
        let mut c = Catalog::new();
        assert!(relation_from_text(&mut c, "Ann|ZAK|2|8|0.7\n").is_err());
        assert!(relation_from_text(&mut c, "# columns: Name:STR\nAnn|2|8|0.7\n").is_err());
    }

    #[test]
    fn bad_field_counts_and_types_are_reported_with_line_numbers() {
        let mut c = Catalog::new();
        let bad = "# name: a\n# columns: Name:STR|Age:INT\nAnn|notanint|2|8|0.7\n";
        match relation_from_text(&mut c, bad) {
            Err(StorageError::ParseError { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let mut c = Catalog::new();
        let bad = "# name: a\n# columns: Name:STR\nAnn|2|8\n";
        assert!(relation_from_text(&mut c, bad).is_err());
    }

    #[test]
    fn empty_intervals_are_rejected() {
        let mut c = Catalog::new();
        let bad = "# name: a\n# columns: Name:STR\nAnn|8|2|0.7\n";
        assert!(relation_from_text(&mut c, bad).is_err());
    }

    #[test]
    fn null_values_roundtrip_as_dash() {
        let mut c = Catalog::new();
        let text = "# name: a\n# columns: Name:STR|Loc:STR\n-|ZAK|1|2|0.5\n";
        let rel = relation_from_text(&mut c, text).unwrap();
        assert!(rel.tuple(0).fact(0).is_null());
    }

    #[test]
    fn unknown_type_in_header_is_an_error() {
        let mut c = Catalog::new();
        let bad = "# name: a\n# columns: Name:TEXT\nAnn|1|2|0.5\n";
        assert!(relation_from_text(&mut c, bad).is_err());
    }
}
