//! A concurrently shared catalog handle with epoch-consistent snapshot
//! reads.
//!
//! [`SharedCatalog`] is the multi-session view of a [`Catalog`]: readers
//! call [`snapshot`](SharedCatalog::snapshot) and receive an
//! `Arc<Catalog>` **pinned at one schema epoch** — an immutable view no
//! concurrent mutation can tear, because mutations never touch a published
//! catalog. [`update`](SharedCatalog::update) instead clones the current
//! catalog (relation payloads stay shared behind their own `Arc`s), applies
//! the mutation to the private copy, and swaps the handle atomically. A
//! query that pinned epoch `e` therefore sees *all* of epoch `e` and
//! *nothing* of epoch `e + 1`, even while DDL or a `LOAD SNAPSHOT` runs in
//! parallel — the read path of the server front-end.
//!
//! ```
//! use tpdb_storage::{Catalog, DataType, Schema, SharedCatalog, TpRelation};
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .register(TpRelation::new("a", Schema::tp(&[("X", DataType::Int)])))
//!     .unwrap();
//! let shared = SharedCatalog::new(catalog);
//!
//! // Readers pin an epoch-consistent view ...
//! let pinned = shared.snapshot();
//! assert_eq!(pinned.schema_epoch(), 1);
//!
//! // ... that survives a concurrent mutation unchanged.
//! shared.update(|c| c.drop_relation("a")).unwrap().unwrap();
//! assert!(pinned.relation("a").is_ok()); // the pinned view still has it
//! assert!(shared.snapshot().relation("a").is_err()); // a fresh pin does not
//! assert_eq!(shared.snapshot().schema_epoch(), 2);
//! ```

use crate::catalog::Catalog;
use crate::error::StorageError;
use std::sync::{Arc, RwLock};

/// A swap-on-write handle to a [`Catalog`] shared by many sessions.
///
/// See the module docs above for the snapshot/update protocol. The
/// handle itself is cheap to share (`Arc<SharedCatalog>`); every method
/// takes `&self`.
#[derive(Debug)]
pub struct SharedCatalog {
    current: RwLock<Arc<Catalog>>,
}

impl SharedCatalog {
    /// Wraps a catalog for shared access.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self {
            current: RwLock::new(Arc::new(catalog)),
        }
    }

    /// Pins the current catalog: the returned `Arc` is an immutable,
    /// epoch-consistent view that concurrent [`update`](Self::update)s
    /// cannot change. Cost: one `RwLock` read acquisition and one `Arc`
    /// clone — no data is copied.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Catalog> {
        // A poisoned lock is recovered with `into_inner`: the slot holds a
        // single `Arc` pointer, which cannot be observed torn, and a
        // read-only pin must not fail an otherwise healthy server. Same
        // justification as `Catalog::relation_names`.
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The schema epoch of the currently published catalog.
    #[must_use]
    pub fn schema_epoch(&self) -> u64 {
        self.snapshot().schema_epoch()
    }

    /// Applies a mutation atomically: clones the published catalog, runs
    /// `f` on the private copy, and swaps the copy in. Readers pinned on
    /// the old epoch keep their view; the next [`snapshot`](Self::snapshot)
    /// sees the whole mutation or none of it. Writers serialize on the
    /// handle's write lock.
    ///
    /// `f`'s return value is passed through, so fallible catalog calls
    /// compose: `shared.update(|c| c.drop_relation("a"))?` yields
    /// `Result<Result<(), StorageError>, StorageError>` — the outer error
    /// is the handle's own lock failure. **A mutation that fails must leave
    /// the catalog unchanged or report it**: the clone is swapped in
    /// regardless of what `f` returns, because `f` may legitimately make
    /// several changes before one fails (the catalog's own mutators are
    /// individually atomic, so this matches single-owner behavior).
    pub fn update<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> Result<R, StorageError> {
        let mut slot = self
            .current
            .write()
            .map_err(|_| StorageError::CatalogPoisoned)?;
        let mut copy = Catalog::clone(&slot);
        let out = f(&mut copy);
        *slot = Arc::new(copy);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::TpRelation;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(TpRelation::new("r", Schema::tp(&[("X", DataType::Int)])))
            .unwrap();
        c
    }

    #[test]
    fn snapshots_are_epoch_pinned_and_immutable() {
        let shared = SharedCatalog::new(catalog());
        let before = shared.snapshot();
        let epoch = before.schema_epoch();
        shared
            .update(|c| c.register(TpRelation::new("s", Schema::tp(&[("Y", DataType::Int)]))))
            .unwrap()
            .unwrap();
        // The pinned view is untouched; the published one moved on.
        assert_eq!(before.schema_epoch(), epoch);
        assert!(before.relation("s").is_err());
        let after = shared.snapshot();
        assert_eq!(after.schema_epoch(), epoch + 1);
        assert!(after.relation("s").is_ok());
    }

    #[test]
    fn update_passes_the_closure_result_through() {
        let shared = SharedCatalog::new(catalog());
        let inner = shared.update(|c| c.drop_relation("missing")).unwrap();
        assert!(matches!(inner, Err(StorageError::UnknownRelation(_))));
        // The failed drop mutated nothing; r is still there.
        assert!(shared.snapshot().relation("r").is_ok());
    }

    #[test]
    fn updates_from_many_threads_serialize() {
        let shared = SharedCatalog::new(Catalog::new());
        std::thread::scope(|scope| {
            for i in 0..8 {
                let shared = &shared;
                scope.spawn(move || {
                    shared
                        .update(|c| {
                            c.register(TpRelation::new(
                                format!("r{i}").as_str(),
                                Schema::tp(&[("X", DataType::Int)]),
                            ))
                        })
                        .unwrap()
                        .unwrap();
                });
            }
        });
        let final_view = shared.snapshot();
        assert_eq!(final_view.schema_epoch(), 8);
        assert_eq!(final_view.relation_names().len(), 8);
    }

    #[test]
    fn cloned_catalogs_share_relation_payloads() {
        let shared = SharedCatalog::new(catalog());
        let a = shared.snapshot();
        shared.update(|_| ()).unwrap();
        let b = shared.snapshot();
        // The update cloned the map, not the relations.
        assert!(Arc::ptr_eq(
            &a.relation("r").unwrap(),
            &b.relation("r").unwrap()
        ));
    }
}
