//! Scalar values of fact attributes.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar value of a non-temporal fact attribute.
///
/// Strings are reference-counted so that projecting/joining tuples never
/// copies string payloads. Floats are compared with a total order
/// ([`f64::total_cmp`]) so that values can be sorted and grouped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style NULL. In join results NULL marks padded attributes of
    /// unmatched/negating output tuples (rendered as `-` in the paper).
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered via `total_cmp`.
    Float(f64),
    /// UTF-8 string (cheaply clonable).
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    #[must_use]
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Is this the NULL value?
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The contained integer, when the value is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The contained float, when the value is a `Float` (or an `Int`, widened).
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The contained string slice, when the value is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained boolean, when the value is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types (Null < Bool < Int/Float < Str).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "-"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(Value::Int(2), Value::Int(2));
        assert_ne!(Value::Int(2), Value::Int(3));
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Int(3));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Null < Value::Int(0));
        assert!(Value::Bool(true) < Value::Int(-100));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn hash_is_consistent_with_equality_for_numerics() {
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::str("abc")));
    }

    #[test]
    fn display_renders_null_as_dash() {
        assert_eq!(Value::Null.to_string(), "-");
        assert_eq!(Value::str("hotel1").to_string(), "hotel1");
        assert_eq!(Value::Int(42).to_string(), "42");
    }

    #[test]
    fn sorting_mixed_values_is_total() {
        let mut vs = [
            Value::str("z"),
            Value::Null,
            Value::Int(5),
            Value::Float(2.5),
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(false));
        assert_eq!(vs[4], Value::str("z"));
    }
}
