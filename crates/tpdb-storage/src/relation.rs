//! TP relations: named, schema-typed collections of TP tuples.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::TpTuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use tpdb_lineage::{Lineage, LineageNode, ProbabilityEngine};
use tpdb_temporal::TimePoint;

/// A temporal-probabilistic relation with schema `(F, λ, T, p)`.
///
/// A `TpRelation` is an ordered, in-memory collection of [`TpTuple`]s sharing
/// a fact [`Schema`]. Base relations are created through the
/// [`Catalog`](crate::Catalog) (which assigns atomic lineage variables);
/// derived relations are produced by the join operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpRelation {
    name: String,
    schema: Schema,
    tuples: Vec<TpTuple>,
}

impl TpRelation {
    /// Creates an empty relation.
    #[must_use]
    pub fn new(name: &str, schema: Schema) -> Self {
        Self {
            name: name.to_owned(),
            schema,
            tuples: Vec::new(),
        }
    }

    /// The relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fact schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples, in insertion order.
    #[must_use]
    pub fn tuples(&self) -> &[TpTuple] {
        &self.tuples
    }

    /// The tuple at position `idx`.
    #[must_use]
    pub fn tuple(&self, idx: usize) -> &TpTuple {
        &self.tuples[idx]
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &TpTuple> {
        self.tuples.iter()
    }

    /// Appends a tuple after validating it against the schema and checking
    /// the probability range.
    pub fn push(&mut self, tuple: TpTuple) -> Result<(), StorageError> {
        self.schema.validate(tuple.facts())?;
        let p = tuple.probability();
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(StorageError::InvalidProbability(p));
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Appends a tuple without validation (used by operators whose inputs
    /// are already validated relations).
    pub fn push_unchecked(&mut self, tuple: TpTuple) {
        self.tuples.push(tuple);
    }

    /// Reserves capacity for at least `additional` more tuples (bulk-load
    /// support: loaders that know the final cardinality up front avoid the
    /// doubling reallocations of repeated pushes).
    pub fn reserve(&mut self, additional: usize) {
        self.tuples.reserve(additional);
    }

    /// Returns a new relation containing the tuples satisfying `predicate`.
    #[must_use]
    pub fn filter<F: Fn(&TpTuple) -> bool>(&self, predicate: F) -> TpRelation {
        TpRelation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| predicate(t))
                .cloned()
                .collect(),
        }
    }

    /// Sorts the tuples in place by the given fact columns, breaking ties by
    /// interval start and end. This is the ordering LAWAU/LAWAN expect.
    pub fn sort_by_columns(&mut self, columns: &[usize]) {
        self.tuples.sort_by(|a, b| {
            for &c in columns {
                let ord = a.fact(c).cmp(b.fact(c));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            (a.interval().start(), a.interval().end())
                .cmp(&(b.interval().start(), b.interval().end()))
        });
    }

    /// The distinct values of a fact column (used by the data generators and
    /// by selectivity statistics in the planner).
    #[must_use]
    pub fn distinct_values(&self, column: usize) -> Vec<Value> {
        let mut vals: Vec<Value> = self.tuples.iter().map(|t| t.fact(column).clone()).collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// Registers the probability of every *base* tuple (atomic lineage) with
    /// the probability engine. Derived (compound) lineages are skipped: their
    /// probabilities are derived quantities.
    pub fn register_probabilities(&self, engine: &mut ProbabilityEngine) {
        // Batched: the engine clears its memo at most once for the whole
        // relation instead of once per tuple.
        engine.set_all(self.tuples.iter().filter_map(|t| match t.lineage().node() {
            LineageNode::Var(v) => Some((*v, t.probability())),
            _ => None,
        }));
    }

    /// The tuples valid at time point `t` (point-wise semantics; used by the
    /// semantic equivalence checks in tests).
    #[must_use]
    pub fn valid_at(&self, t: TimePoint) -> Vec<&TpTuple> {
        self.tuples.iter().filter(|tp| tp.valid_at(t)).collect()
    }

    /// The disjunction of the lineages of all tuples valid at `t` whose fact
    /// equals `facts`. This is the λ<sub>r,θ</sub><sup>t</sup> notation of
    /// Definition 1, restricted to one fact.
    #[must_use]
    pub fn lineage_at(&self, facts: &[Value], t: TimePoint) -> Lineage {
        let parts: Vec<Lineage> = self
            .tuples
            .iter()
            .filter(|tp| tp.valid_at(t) && tp.facts() == facts)
            .map(|tp| tp.lineage().clone())
            .collect();
        Lineage::or(parts)
    }

    /// Renames the relation (used when the same stored relation is scanned
    /// twice under different correlation names).
    #[must_use]
    pub fn renamed(&self, name: &str) -> TpRelation {
        TpRelation {
            name: name.to_owned(),
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
        }
    }
}

impl fmt::Display for TpRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.name, self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use tpdb_lineage::VarId;
    use tpdb_temporal::Interval;

    fn rel() -> TpRelation {
        let mut r = TpRelation::new(
            "a",
            Schema::tp(&[("Name", DataType::Str), ("Loc", DataType::Str)]),
        );
        r.push(TpTuple::new(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Lineage::var(VarId(0)),
            Interval::new(2, 8),
            0.7,
        ))
        .unwrap();
        r.push(TpTuple::new(
            vec![Value::str("Jim"), Value::str("WEN")],
            Lineage::var(VarId(1)),
            Interval::new(7, 10),
            0.8,
        ))
        .unwrap();
        r
    }

    #[test]
    fn push_validates_schema_and_probability() {
        let mut r = rel();
        assert_eq!(r.len(), 2);
        let bad_arity = TpTuple::new(
            vec![Value::str("x")],
            Lineage::var(VarId(9)),
            Interval::new(0, 1),
            0.5,
        );
        assert!(matches!(
            r.push(bad_arity),
            Err(StorageError::ArityMismatch { .. })
        ));
        let bad_prob = TpTuple::new(
            vec![Value::str("x"), Value::str("y")],
            Lineage::var(VarId(9)),
            Interval::new(0, 1),
            1.5,
        );
        assert!(matches!(
            r.push(bad_prob),
            Err(StorageError::InvalidProbability(_))
        ));
    }

    #[test]
    fn filter_and_distinct() {
        let r = rel();
        let only_ann = r.filter(|t| t.fact(0) == &Value::str("Ann"));
        assert_eq!(only_ann.len(), 1);
        assert_eq!(
            r.distinct_values(1),
            vec![Value::str("WEN"), Value::str("ZAK")]
        );
    }

    #[test]
    fn sort_by_columns_orders_by_value_then_interval() {
        let mut r = TpRelation::new("b", Schema::tp(&[("k", DataType::Int)]));
        for (k, s, e) in [(2, 5, 9), (1, 4, 6), (1, 1, 3), (2, 0, 2)] {
            r.push(TpTuple::new(
                vec![Value::Int(k)],
                Lineage::tru(),
                Interval::new(s, e),
                1.0,
            ))
            .unwrap();
        }
        r.sort_by_columns(&[0]);
        let keys: Vec<(i64, i64)> = r
            .iter()
            .map(|t| (t.fact(0).as_int().unwrap(), t.interval().start()))
            .collect();
        assert_eq!(keys, vec![(1, 1), (1, 4), (2, 0), (2, 5)]);
    }

    #[test]
    fn register_probabilities_covers_base_tuples_only() {
        let mut r = rel();
        // add a derived tuple with compound lineage; it must not be registered
        r.push(TpTuple::new(
            vec![Value::str("Ann"), Value::str("ZAK")],
            Lineage::and2(Lineage::var(VarId(0)), Lineage::var(VarId(1))),
            Interval::new(20, 21),
            0.56,
        ))
        .unwrap();
        let mut engine = ProbabilityEngine::new();
        r.register_probabilities(&mut engine);
        assert_eq!(engine.len(), 2);
        assert_eq!(engine.get(VarId(0)), Some(0.7));
        assert_eq!(engine.get(VarId(1)), Some(0.8));
    }

    #[test]
    fn valid_at_and_lineage_at() {
        let r = rel();
        assert_eq!(r.valid_at(7).len(), 2);
        assert_eq!(r.valid_at(9).len(), 1);
        assert_eq!(r.valid_at(100).len(), 0);
        let lin = r.lineage_at(&[Value::str("Ann"), Value::str("ZAK")], 3);
        assert_eq!(lin, Lineage::var(VarId(0)));
        let none = r.lineage_at(&[Value::str("Ann"), Value::str("ZAK")], 9);
        assert!(none.is_false());
    }

    #[test]
    fn renamed_keeps_contents() {
        let r = rel().renamed("a2");
        assert_eq!(r.name(), "a2");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn display_lists_tuples() {
        let s = rel().to_string();
        assert!(s.contains("Ann"));
        assert!(s.contains("Jim"));
    }
}
