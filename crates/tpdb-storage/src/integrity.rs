//! Integrity checking for TP relations.

use crate::relation::TpRelation;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use tpdb_temporal::Interval;

/// A violation of the duplicate-free TP integrity constraint: two tuples
/// with the same fact whose validity intervals overlap.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityViolation {
    /// The shared fact values.
    pub facts: Vec<Value>,
    /// Interval of the first offending tuple.
    pub first: Interval,
    /// Interval of the second offending tuple.
    pub second: Interval,
}

impl fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duplicate fact valid over overlapping intervals {} and {}",
            self.first, self.second
        )
    }
}

/// Checks the duplicate-free constraint of the TP data model: for every
/// fact, at most one tuple is valid at any time point.
///
/// The paper's running example relies on this property ("there is no other
/// tuple in a that predicts the probability of 'Jim visiting Wengen' over an
/// interval overlapping with [7,10)"). The window algorithms do not require
/// it for termination, but output probabilities are only meaningful on
/// duplicate-free inputs, so generators and importers validate it.
#[must_use]
pub fn check_duplicate_free(relation: &TpRelation) -> Vec<IntegrityViolation> {
    let mut by_fact: HashMap<Vec<Value>, Vec<Interval>> = HashMap::new();
    for t in relation.iter() {
        by_fact
            .entry(t.facts().to_vec())
            .or_default()
            .push(t.interval());
    }
    let mut violations = Vec::new();
    for (facts, mut intervals) in by_fact {
        intervals.sort_by_key(|i| (i.start(), i.end()));
        for w in intervals.windows(2) {
            let [first, second] = w else { continue };
            if first.overlaps(second) {
                violations.push(IntegrityViolation {
                    facts: facts.clone(),
                    first: *first,
                    second: *second,
                });
            }
        }
    }
    violations.sort_by(|a, b| {
        (a.first.start(), a.second.start()).cmp(&(b.first.start(), b.second.start()))
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::tuple::TpTuple;
    use tpdb_lineage::Lineage;

    fn relation_with(intervals: &[(&str, i64, i64)]) -> TpRelation {
        let mut r = TpRelation::new("r", Schema::tp(&[("k", DataType::Str)]));
        for (k, s, e) in intervals {
            r.push(TpTuple::new(
                vec![Value::str(k)],
                Lineage::tru(),
                Interval::new(*s, *e),
                1.0,
            ))
            .unwrap();
        }
        r
    }

    #[test]
    fn disjoint_same_fact_is_ok() {
        let r = relation_with(&[("x", 1, 3), ("x", 3, 6), ("x", 8, 9)]);
        assert!(check_duplicate_free(&r).is_empty());
    }

    #[test]
    fn overlapping_same_fact_is_reported() {
        let r = relation_with(&[("x", 1, 5), ("x", 4, 8)]);
        let v = check_duplicate_free(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].first, Interval::new(1, 5));
        assert_eq!(v[0].second, Interval::new(4, 8));
        assert!(v[0].to_string().contains("overlapping"));
    }

    #[test]
    fn overlapping_different_facts_is_ok() {
        let r = relation_with(&[("x", 1, 5), ("y", 4, 8)]);
        assert!(check_duplicate_free(&r).is_empty());
    }

    #[test]
    fn paper_base_relations_are_duplicate_free() {
        let r = relation_with(&[("ZAK", 5, 8), ("ZAK", 4, 6)]);
        // hotel2 [5,8) and hotel1 [4,6) share the location but are different
        // facts in relation b (Hotel differs); here we model them as the same
        // fact, so the overlap is flagged.
        assert_eq!(check_duplicate_free(&r).len(), 1);
    }
}
